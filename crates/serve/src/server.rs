//! The multi-tenant wake-word server.
//!
//! A [`WakeServer`] fronts one trained [`HeadTalk`] pipeline with many
//! concurrent device sessions. Sessions are sharded by id (`id mod
//! n_shards`); each shard owns a [`ShardArena`] of reusable
//! [`WakeStream`](headtalk::WakeStream) slots behind its own lock, so
//! streaming work for different shards proceeds in parallel on the
//! `ht-par` pool with no cross-shard contention. Admission is a single
//! [`TokenBucket`] over the caller's logical clock plus a per-shard slot
//! cap — both produce typed [`RejectReason`]s instead of unbounded queues.
//!
//! Determinism contract: the server itself never reads a clock or an RNG.
//! Every entry point takes a logical `now_ns`, every per-session result is
//! produced by the same `WakeStream` → `decide_batch` path as solo batch
//! processing, and the arena reuse is invisible to results (a reset slot
//! is byte-identical to a fresh one — pinned by the interleaving suite).
//!
//! Failure policy: a mid-stream geometry violation (channel count change,
//! ragged chunk) is not survivable for that session — the stream's state
//! can no longer be trusted — so the session is **eagerly evicted**: its
//! slot is reset and returned to the arena before the error reaches the
//! caller. Nothing stays pinned until some later cleanup pass; repeated
//! failing sessions leave the arena high-water marks flat (regression
//! test: `eager_eviction_keeps_arena_marks_flat`).

use std::collections::BTreeMap;
use std::sync::Mutex;

use headtalk::stream::{StreamOutcome, WakeVerdict};
use headtalk::{HeadTalk, HeadTalkError, PipelineConfig, StreamConfig};
use ht_stream::StreamError;

use crate::admission::{RejectReason, TokenBucket, TokenBucketConfig};
use crate::arena::ShardArena;

/// Tuning for a [`WakeServer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Number of session shards (parallelism grain; must be ≥ 1).
    pub n_shards: usize,
    /// Session-slot capacity per shard; the hard bound on in-flight
    /// sessions is `n_shards * sessions_per_shard`.
    pub sessions_per_shard: usize,
    /// Admission-rate control for `open`.
    pub bucket: TokenBucketConfig,
    /// Sessions idle longer than this (no push/finalize) are evicted by
    /// [`WakeServer::evict_idle`].
    pub session_idle_timeout_ns: u64,
    /// Microphone channels per session.
    pub n_channels: usize,
    /// Stream geometry and gate tuning shared by every session.
    pub stream: StreamConfig,
    /// Session slots to build eagerly per shard at construction (clamped
    /// to `sessions_per_shard`). Lazy slot construction puts a
    /// multi-millisecond burst on the first `open` to touch each slot;
    /// prewarming moves that cost to startup so open tail latency stays
    /// flat. `0` keeps the historical fully lazy behavior.
    pub prewarm_slots: usize,
}

impl ServeConfig {
    /// Defaults for a pipeline configuration: 4 shards of 64 slots, the
    /// default admission bucket, a 30 s (logical) idle timeout, and the
    /// pipeline's natural stream geometry.
    pub fn for_pipeline(config: &PipelineConfig) -> ServeConfig {
        ServeConfig {
            n_shards: 4,
            sessions_per_shard: 64,
            bucket: TokenBucketConfig::default(),
            session_idle_timeout_ns: 30_000_000_000,
            n_channels: 4,
            stream: StreamConfig::for_pipeline(config),
            prewarm_slots: 0,
        }
    }
}

/// An error from the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// `open` refused the session; the reason says when to retry.
    Rejected(RejectReason),
    /// The session id is not open on this server.
    UnknownSession(u64),
    /// `open` was called for an id that is already in flight.
    DuplicateSession(u64),
    /// The session hit a mid-stream geometry violation and was eagerly
    /// evicted — its slot is already back in the arena; the id is closed.
    Evicted {
        /// The evicted session.
        id: u64,
        /// What the stream rejected.
        cause: StreamError,
    },
    /// The underlying pipeline failed (finalization of a degenerate
    /// capture, slot construction with an untrained width, …).
    Pipeline(HeadTalkError),
    /// A server-internal lock was poisoned: a thread panicked while
    /// holding it, so its shard (or the admission bucket) can no longer be
    /// trusted for request work. The string names the lock. Surfaced as a
    /// typed error instead of propagating the panic into every subsequent
    /// caller.
    LockPoisoned(&'static str),
    /// A server-internal invariant broke (a bug, not a caller error); the
    /// string says which one. Exists so hot paths degrade to a typed error
    /// instead of panicking mid-request.
    Internal(&'static str),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected(r) => write!(f, "admission rejected: {r}"),
            ServeError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServeError::DuplicateSession(id) => write!(f, "session {id} is already open"),
            ServeError::Evicted { id, cause } => {
                write!(f, "session {id} evicted: {cause}")
            }
            ServeError::Pipeline(e) => write!(f, "pipeline error: {e}"),
            ServeError::LockPoisoned(what) => {
                write!(f, "{what} lock poisoned by a panicked handler")
            }
            ServeError::Internal(what) => write!(f, "internal invariant broken: {what}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Evicted { cause, .. } => Some(cause),
            ServeError::Pipeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HeadTalkError> for ServeError {
    fn from(e: HeadTalkError) -> Self {
        ServeError::Pipeline(e)
    }
}

/// One in-flight session's bookkeeping.
#[derive(Debug)]
struct Session {
    slot: usize,
    last_active_ns: u64,
}

#[derive(Debug)]
struct Shard<'ht> {
    arena: ShardArena<'ht>,
    sessions: BTreeMap<u64, Session>,
}

/// Per-shard load numbers from [`WakeServer::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Sessions currently in flight on this shard.
    pub live: usize,
    /// Most sessions this shard ever held at once.
    pub live_hwm: usize,
    /// Session slots this shard's arena has constructed.
    pub slots_built: usize,
}

/// A point-in-time load summary from [`WakeServer::stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeStats {
    /// Sessions currently in flight across all shards.
    pub live: usize,
    /// Session slots constructed across all shards (each construction is
    /// one burst of heap allocations; flat in steady state).
    pub slots_built: usize,
    /// Per-shard breakdown, indexed by shard.
    pub shards: Vec<ShardStats>,
}

/// A sharded multi-tenant front end over one [`HeadTalk`] pipeline.
///
/// All entry points take `&self`; shards lock independently, so callers on
/// different shards never contend. Lock order is fixed (bucket before
/// shard, one shard at a time), so the server cannot deadlock against
/// itself.
#[derive(Debug)]
pub struct WakeServer<'ht> {
    ht: &'ht HeadTalk,
    config: ServeConfig,
    bucket: Mutex<TokenBucket>,
    shards: Vec<Mutex<Shard<'ht>>>,
}

impl<'ht> WakeServer<'ht> {
    /// A server over `ht` with no sessions yet. Session slots are built
    /// lazily on first use, per shard.
    ///
    /// # Panics
    ///
    /// Panics when `config.n_shards`, `config.sessions_per_shard`, or
    /// `config.n_channels` is zero — a structurally useless server is a
    /// deployment bug, not a runtime condition. Panics when
    /// `config.prewarm_slots > 0` and a slot fails to construct (an
    /// untrained pipeline behind an eagerly provisioned server is likewise
    /// a deployment bug; leave the knob at zero to surface construction
    /// errors lazily through `open` instead).
    pub fn new(ht: &'ht HeadTalk, config: ServeConfig) -> WakeServer<'ht> {
        assert!(config.n_shards > 0, "a server needs at least one shard");
        assert!(
            config.sessions_per_shard > 0,
            "a shard needs at least one session slot"
        );
        assert!(config.n_channels > 0, "sessions need at least one channel");
        let shards = (0..config.n_shards)
            .map(|_| {
                Mutex::new(Shard {
                    arena: ShardArena::new(
                        ht,
                        config.n_channels,
                        config.stream,
                        config.sessions_per_shard,
                    ),
                    sessions: BTreeMap::new(),
                })
            })
            .collect();
        let server = WakeServer {
            ht,
            config,
            bucket: Mutex::new(TokenBucket::new(config.bucket)),
            shards,
        };
        if config.prewarm_slots > 0 {
            server
                .prewarm(config.prewarm_slots)
                .expect("prewarm: session-slot construction failed");
        }
        server
    }

    /// Eagerly builds up to `per_shard` session slots on every shard (see
    /// [`ServeConfig::prewarm_slots`] to do this at construction). Returns
    /// the total number of slots built. Idempotent: already-built slots
    /// are counted toward the target, never rebuilt.
    ///
    /// # Errors
    ///
    /// [`ServeError::Pipeline`] when a slot fails to construct (earlier
    /// slots stay built), [`ServeError::LockPoisoned`] for a wrecked
    /// shard.
    pub fn prewarm(&self, per_shard: usize) -> Result<usize, ServeError> {
        let _span = ht_obs::span("serve.prewarm");
        let mut total = 0;
        for idx in 0..self.shards.len() {
            let mut shard = self.lock_shard(idx)?;
            total += shard.arena.prewarm(per_shard)?;
        }
        Ok(total)
    }

    /// The configuration this server runs under.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The shard a session id maps to.
    pub fn shard_of(&self, id: u64) -> usize {
        (id % self.config.n_shards as u64) as usize
    }

    /// Locks shard `idx` for request work, turning poisoning into a typed
    /// error instead of a propagated panic.
    fn lock_shard(&self, idx: usize) -> Result<std::sync::MutexGuard<'_, Shard<'ht>>, ServeError> {
        self.shards[idx]
            .lock()
            .map_err(|_| ServeError::LockPoisoned("shard"))
    }

    /// Opens a session at logical time `now_ns`.
    ///
    /// Admission runs duplicate check → shard-slot check → token bucket,
    /// in that order, so a rejected open consumes **nothing**: no token is
    /// burned on a duplicate or a full shard, and no slot is touched on a
    /// rate limit. Rejected sessions leave zero residual shard state.
    ///
    /// # Errors
    ///
    /// [`ServeError::DuplicateSession`] for an id already in flight,
    /// [`ServeError::Rejected`] when admission refuses,
    /// [`ServeError::LockPoisoned`] when a handler panicked while holding
    /// this shard's (or the bucket's) lock.
    pub fn open(&self, id: u64, now_ns: u64) -> Result<(), ServeError> {
        let _span = ht_obs::span("serve.open");
        let shard_idx = self.shard_of(id);
        let mut shard = self.lock_shard(shard_idx)?;
        if shard.sessions.contains_key(&id) {
            return Err(ServeError::DuplicateSession(id));
        }
        if shard.arena.live() >= shard.arena.capacity() {
            ht_obs::counter_add("serve.rejected.capacity", 1);
            return Err(ServeError::Rejected(RejectReason::ShardFull {
                shard: shard_idx,
                capacity: shard.arena.capacity(),
            }));
        }
        let admit = self
            .bucket
            .lock()
            .map_err(|_| ServeError::LockPoisoned("bucket"))?
            .try_take(now_ns);
        if let Err(reject) = admit {
            ht_obs::counter_add("serve.rejected.rate", 1);
            return Err(ServeError::Rejected(reject));
        }
        // Cannot be `None` unless an invariant broke: the capacity check
        // above held under this shard's lock. Degrade to a typed error
        // rather than panic mid-request if it ever does.
        let Some(slot) = shard.arena.acquire()? else {
            return Err(ServeError::Internal("arena empty after capacity check"));
        };
        shard.sessions.insert(
            id,
            Session {
                slot,
                last_active_ns: now_ns,
            },
        );
        ht_obs::counter_add("serve.admitted", 1);
        ht_obs::counter_max("serve.shard_sessions_hwm", shard.sessions.len() as u64);
        ht_obs::counter_max("serve.arena_slots_hwm", shard.arena.live_hwm() as u64);
        Ok(())
    }

    /// Streams one audio chunk into a session at logical time `now_ns`.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for an id that isn't open,
    /// [`ServeError::LockPoisoned`] for a shard wrecked by a panicked
    /// handler. A mid-stream geometry violation eagerly evicts the session
    /// (slot reset and released before returning) and surfaces as
    /// [`ServeError::Evicted`].
    pub fn push(&self, id: u64, chunk: &[&[f64]], now_ns: u64) -> Result<WakeVerdict, ServeError> {
        let _span = ht_obs::span("serve.push");
        let mut shard = self.lock_shard(self.shard_of(id))?;
        let slot = match shard.sessions.get_mut(&id) {
            Some(session) => {
                session.last_active_ns = now_ns;
                session.slot
            }
            None => return Err(ServeError::UnknownSession(id)),
        };
        match shard.arena.slot_mut(slot).push(chunk) {
            Ok(verdict) => Ok(verdict),
            Err(e) => {
                // The stream can't be trusted past a geometry violation:
                // evict eagerly so the slot (and its ring memory) goes
                // straight back to the arena instead of staying pinned
                // behind a dead session.
                shard.sessions.remove(&id);
                shard.arena.release(slot);
                ht_obs::counter_add("serve.evicted.error", 1);
                match e {
                    HeadTalkError::Stream(cause) => Err(ServeError::Evicted { id, cause }),
                    other => Err(ServeError::Pipeline(other)),
                }
            }
        }
    }

    /// Finalizes a session at logical time `now_ns`: assembles the
    /// incrementally accumulated evidence (O(features) — the capture is
    /// never re-transformed), runs the models, closes the session, and
    /// recycles its slot.
    ///
    /// A finalize that cannot decide — typically a capture still too short
    /// to hold one analysis frame — is **retryable**: the session stays
    /// open, marked active at `now_ns` (so it is not counted idle relative
    /// to this attempt), and more audio may be pushed before trying again.
    /// A session that should be abandoned instead goes through
    /// [`close`](WakeServer::close); idle eviction reaps the rest.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for an id that isn't open;
    /// [`ServeError::Pipeline`] when the evidence cannot yet decide (the
    /// session remains open); [`ServeError::LockPoisoned`] for a shard
    /// wrecked by a panicked handler.
    pub fn finalize(&self, id: u64, now_ns: u64) -> Result<StreamOutcome, ServeError> {
        let _span = ht_obs::span("serve.decision");
        let mut shard = self.lock_shard(self.shard_of(id))?;
        let slot = match shard.sessions.get_mut(&id) {
            Some(session) => {
                session.last_active_ns = now_ns;
                session.slot
            }
            None => return Err(ServeError::UnknownSession(id)),
        };
        match shard.arena.slot_mut(slot).outcome() {
            Ok(o) => {
                shard.sessions.remove(&id);
                shard.arena.release(slot);
                ht_obs::counter_add("serve.decisions", 1);
                Ok(o)
            }
            Err(e) => {
                ht_obs::counter_add("serve.finalize_retry", 1);
                Err(ServeError::Pipeline(e))
            }
        }
    }

    /// Closes a session without deciding, releasing its slot. The explicit
    /// companion to retryable [`finalize`](WakeServer::finalize) for
    /// callers abandoning an undecidable session.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSession`] for an id that isn't open,
    /// [`ServeError::LockPoisoned`] for a shard wrecked by a panicked
    /// handler.
    pub fn close(&self, id: u64) -> Result<(), ServeError> {
        let mut shard = self.lock_shard(self.shard_of(id))?;
        match shard.sessions.remove(&id) {
            Some(session) => {
                shard.arena.release(session.slot);
                ht_obs::counter_add("serve.closed", 1);
                Ok(())
            }
            None => Err(ServeError::UnknownSession(id)),
        }
    }

    /// Finalizes many sessions at logical time `now_ns`, parallelizing
    /// both evidence assembly and model inference across them on the
    /// `ht-par` pool.
    ///
    /// Every involved shard is locked (in ascending index order — the
    /// fixed order, so the server cannot deadlock against itself), the
    /// batch's sessions are staged, and **assembly itself runs as one
    /// per-session task fan-out** over disjoint slot borrows: the
    /// remaining FFT/accumulator work of a finalize wave overlaps across
    /// pool workers instead of serializing under one shard lock at a
    /// time. The locks are dropped before any model runs, so inference
    /// for sessions of *one* shard parallelizes too, which
    /// single-session [`finalize`](WakeServer::finalize) under the shard
    /// lock cannot do. Results come back in input order with per-session
    /// errors: an undecidable session stays open (retryable, marked
    /// active at `now_ns`) exactly as in single finalize, and never
    /// blocks its batch neighbours. Outcomes are byte-identical to
    /// calling [`finalize`](WakeServer::finalize) per id, at any
    /// `HT_THREADS`.
    pub fn finalize_batch(
        &self,
        ids: &[u64],
        now_ns: u64,
    ) -> Vec<(u64, Result<StreamOutcome, ServeError>)> {
        /// Evidence cloned out of a slot, ready for lock-free inference.
        struct Pack {
            pos: usize,
            id: u64,
            features: Vec<f64>,
            liveness: Vec<f64>,
            muted: bool,
            early_exit: Option<headtalk::stream::EarlyExit>,
            frames: u64,
            samples_per_channel: usize,
        }

        /// One session's assembly result, produced without touching any
        /// shard bookkeeping so the tasks can run in parallel.
        enum Assembled {
            Ready {
                features: Vec<f64>,
                liveness: Vec<f64>,
                muted: bool,
                early_exit: Option<headtalk::stream::EarlyExit>,
                frames: u64,
                samples_per_channel: usize,
            },
            /// Same contract as `WakeStream::outcome`: the gate already
            /// muted the stream, so an undecidable capture is a decision,
            /// not an error.
            Muted {
                early_exit: Option<headtalk::stream::EarlyExit>,
                frames: u64,
                samples_per_channel: usize,
            },
            Retry(HeadTalkError),
        }

        /// Assembles one session's evidence. Clones the evidence out
        /// eagerly so the borrow from `assemble` ends before the error
        /// arms inspect the stream.
        fn assemble_session(stream: &mut headtalk::WakeStream<'_>) -> Assembled {
            let assembled = {
                let _span = ht_obs::span("serve.assemble");
                stream
                    .assemble()
                    .map(|ev| (ev.features.to_vec(), ev.liveness_input.to_vec()))
            };
            match assembled {
                Ok((features, liveness)) => Assembled::Ready {
                    features,
                    liveness,
                    muted: stream.is_muted(),
                    early_exit: stream.early_exit(),
                    frames: stream.frames(),
                    samples_per_channel: stream.samples_per_channel(),
                },
                Err(_) if stream.is_muted() => Assembled::Muted {
                    early_exit: stream.early_exit(),
                    frames: stream.frames(),
                    samples_per_channel: stream.samples_per_channel(),
                },
                Err(e) => Assembled::Retry(e),
            }
        }

        /// Applies one assembly result to its shard's bookkeeping —
        /// single-finalize semantics, in input order.
        #[allow(clippy::too_many_arguments)]
        fn apply<'ht>(
            shard: &mut Shard<'ht>,
            outcome: Assembled,
            pos: usize,
            id: u64,
            slot: usize,
            results: &mut [Option<(u64, Result<StreamOutcome, ServeError>)>],
            packs: &mut Vec<Pack>,
        ) {
            match outcome {
                Assembled::Ready {
                    features,
                    liveness,
                    muted,
                    early_exit,
                    frames,
                    samples_per_channel,
                } => {
                    shard.sessions.remove(&id);
                    shard.arena.release(slot);
                    ht_obs::counter_add("serve.decisions", 1);
                    packs.push(Pack {
                        pos,
                        id,
                        features,
                        liveness,
                        muted,
                        early_exit,
                        frames,
                        samples_per_channel,
                    });
                }
                Assembled::Muted {
                    early_exit,
                    frames,
                    samples_per_channel,
                } => {
                    let outcome = StreamOutcome {
                        verdict: WakeVerdict::SoftMute,
                        decision: None,
                        features: Vec::new(),
                        early_exit,
                        frames,
                        samples_per_channel,
                    };
                    shard.sessions.remove(&id);
                    shard.arena.release(slot);
                    ht_obs::counter_add("serve.decisions", 1);
                    results[pos] = Some((id, Ok(outcome)));
                }
                Assembled::Retry(e) => {
                    ht_obs::counter_add("serve.finalize_retry", 1);
                    results[pos] = Some((id, Err(ServeError::Pipeline(e))));
                }
            }
        }

        let mut results: Vec<Option<(u64, Result<StreamOutcome, ServeError>)>> =
            (0..ids.len()).map(|_| None).collect();
        let mut by_shard: Vec<Vec<(usize, u64)>> = vec![Vec::new(); self.shards.len()];
        for (pos, &id) in ids.iter().enumerate() {
            by_shard[self.shard_of(id)].push((pos, id));
        }

        // Phase 1a: lock every involved shard, validate its batch members
        // against the session map, and stage one assemble job per live
        // session. A wrecked shard fails only its own members; the batch
        // neighbours on healthy shards still decide.
        let mut guards: Vec<std::sync::MutexGuard<'_, Shard<'ht>>> = Vec::new();
        // (guard, pos, id, slot) per staged first-occurrence session.
        let mut jobs: Vec<(usize, usize, u64, usize)> = Vec::new();
        // (guard, pos, id) per repeated id, resolved after the fan-out.
        let mut dups: Vec<(usize, usize, u64)> = Vec::new();
        for (shard_idx, members) in by_shard.into_iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            let mut shard = match self.lock_shard(shard_idx) {
                Ok(shard) => shard,
                Err(e) => {
                    for (pos, id) in members {
                        results[pos] = Some((id, Err(e.clone())));
                    }
                    continue;
                }
            };
            let guard_pos = guards.len();
            let mut claimed: Vec<u64> = Vec::new();
            for (pos, id) in members {
                if claimed.contains(&id) {
                    // A repeated id decides against whatever state its
                    // first occurrence leaves behind, so it cannot join
                    // the parallel fan-out (two tasks would need the same
                    // slot). Resolved serially below with single-finalize
                    // semantics.
                    dups.push((guard_pos, pos, id));
                    continue;
                }
                match shard.sessions.get_mut(&id) {
                    Some(session) => {
                        session.last_active_ns = now_ns;
                        claimed.push(id);
                        jobs.push((guard_pos, pos, id, session.slot));
                    }
                    None => {
                        results[pos] = Some((id, Err(ServeError::UnknownSession(id))));
                    }
                }
            }
            guards.push(shard);
        }

        // Phase 1b: assemble every staged session in parallel through
        // disjoint slot borrows. Jobs sort by (guard, slot) so each
        // arena's borrow splits cleanly; `par_map` preserves order, so
        // `assembled[i]` belongs to `jobs[i]`.
        jobs.sort_by_key(|&(guard, _, _, slot)| (guard, slot));
        let assembled: Vec<Assembled> = {
            let mut tasks: Vec<Mutex<&mut headtalk::WakeStream<'ht>>> =
                Vec::with_capacity(jobs.len());
            let mut job_iter = jobs.iter().peekable();
            for (guard_pos, shard) in guards.iter_mut().enumerate() {
                let mut slots = Vec::new();
                while let Some(&&(g, _, _, slot)) = job_iter.peek() {
                    if g != guard_pos {
                        break;
                    }
                    slots.push(slot);
                    job_iter.next();
                }
                for stream in shard.arena.disjoint_slots_mut(&slots) {
                    tasks.push(Mutex::new(stream));
                }
            }
            ht_par::par_map(&tasks, |task| {
                let mut stream = task.lock().expect("assemble task lock");
                assemble_session(&mut stream)
            })
        };

        // Phase 1c: apply the results to the shard bookkeeping in job
        // order, then resolve repeated ids serially — a retryable first
        // occurrence leaves the session open, so its repeat re-assembles
        // (hitting the cached directivity flush) exactly as two serial
        // finalize calls would.
        let mut packs: Vec<Pack> = Vec::with_capacity(jobs.len());
        for (&(guard_pos, pos, id, slot), outcome) in jobs.iter().zip(assembled) {
            apply(
                &mut guards[guard_pos],
                outcome,
                pos,
                id,
                slot,
                &mut results,
                &mut packs,
            );
        }
        for (guard_pos, pos, id) in dups {
            let shard = &mut guards[guard_pos];
            let slot = match shard.sessions.get_mut(&id) {
                Some(session) => {
                    session.last_active_ns = now_ns;
                    session.slot
                }
                None => {
                    results[pos] = Some((id, Err(ServeError::UnknownSession(id))));
                    continue;
                }
            };
            let outcome = assemble_session(shard.arena.slot_mut(slot));
            apply(shard, outcome, pos, id, slot, &mut results, &mut packs);
        }
        drop(guards);

        // Phase 2: model inference across sessions, outside every lock.
        let inferred: Vec<(usize, u64, StreamOutcome)> = ht_par::par_map(&packs, |pack| {
            let _span = ht_obs::span("serve.decision");
            let decision = self.ht.infer_assembled(&pack.features, &pack.liveness);
            let verdict = if pack.muted || !decision.accepted() {
                WakeVerdict::SoftMute
            } else {
                WakeVerdict::Allow
            };
            (
                pack.pos,
                pack.id,
                StreamOutcome {
                    verdict,
                    decision: Some(decision),
                    features: pack.features.clone(),
                    early_exit: pack.early_exit,
                    frames: pack.frames,
                    samples_per_channel: pack.samples_per_channel,
                },
            )
        });
        for (pos, id, outcome) in inferred {
            results[pos] = Some((id, Ok(outcome)));
        }
        // Every position was filled in phase 1 or phase 2; if one ever
        // isn't, report it for that id instead of panicking mid-batch.
        results
            .into_iter()
            .zip(ids)
            .map(|(r, &id)| {
                r.unwrap_or((id, Err(ServeError::Internal("batch result missing for id"))))
            })
            .collect()
    }

    /// Evicts every session idle since before `now_ns -
    /// session_idle_timeout_ns`, releasing their slots. Returns the number
    /// evicted. Deterministic: sessions are scanned in shard order, then
    /// id order.
    ///
    /// A shard whose lock was poisoned by a panicked handler is recovered
    /// and swept anyway: the session map and arena only mutate in paired,
    /// non-unwinding steps, so the bookkeeping is structurally sound even
    /// after a panic, and reaping the reaper would leak every slot on that
    /// shard forever.
    pub fn evict_idle(&self, now_ns: u64) -> usize {
        let timeout = self.config.session_idle_timeout_ns;
        let mut evicted = 0;
        for shard in &self.shards {
            let mut shard = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let stale: Vec<u64> = shard
                .sessions
                .iter()
                .filter(|(_, s)| now_ns.saturating_sub(s.last_active_ns) > timeout)
                .map(|(&id, _)| id)
                .collect();
            for id in stale {
                if let Some(session) = shard.sessions.remove(&id) {
                    shard.arena.release(session.slot);
                    evicted += 1;
                }
            }
        }
        if evicted > 0 {
            ht_obs::counter_add("serve.evicted.idle", evicted as u64);
        }
        evicted
    }

    /// Admission tokens available at logical time `now_ns`. Read-only, so
    /// a poisoned bucket lock is recovered rather than propagated — the
    /// count stays observable after a handler panic.
    pub fn tokens_available(&self, now_ns: u64) -> u64 {
        self.bucket
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .available(now_ns)
    }

    /// A point-in-time load summary across all shards. Read-only, so
    /// poisoned shard locks are recovered rather than propagated —
    /// diagnostics must stay reachable precisely when a handler has
    /// panicked.
    pub fn stats(&self) -> ServeStats {
        let shards: Vec<ShardStats> = self
            .shards
            .iter()
            .map(|shard| {
                let shard = shard
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                ShardStats {
                    live: shard.sessions.len(),
                    live_hwm: shard.arena.live_hwm(),
                    slots_built: shard.arena.built(),
                }
            })
            .collect();
        ServeStats {
            live: shards.iter().map(|s| s.live).sum(),
            slots_built: shards.iter().map(|s| s.slots_built).sum(),
            shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::toy_pipeline;
    use ht_dsp::rng::{gaussian, SeedableRng, StdRng};

    fn noise_capture(seed: u64, n_channels: usize, len: usize) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n_channels)
            .map(|_| (0..len).map(|_| 0.1 * gaussian(&mut rng)).collect())
            .collect()
    }

    fn serve_config(ht: &HeadTalk) -> ServeConfig {
        ServeConfig {
            n_shards: 2,
            sessions_per_shard: 2,
            bucket: TokenBucketConfig {
                capacity: 64,
                refill_per_sec: 0,
            },
            session_idle_timeout_ns: 1_000_000_000,
            ..ServeConfig::for_pipeline(ht.config())
        }
    }

    fn push_all(server: &WakeServer<'_>, id: u64, capture: &[Vec<f64>], now_ns: u64) {
        let hop = server.config().stream.hop;
        let len = capture[0].len();
        let mut pos = 0;
        while pos < len {
            let end = (pos + hop).min(len);
            let chunk: Vec<&[f64]> = capture.iter().map(|c| &c[pos..end]).collect();
            server.push(id, &chunk, now_ns).expect("push");
            pos = end;
        }
    }

    #[test]
    fn session_outcome_matches_solo_batch() {
        let ht = toy_pipeline();
        let server = WakeServer::new(&ht, serve_config(&ht));
        let capture = noise_capture(0x11, 4, 4800);

        server.open(7, 0).unwrap();
        push_all(&server, 7, &capture, 1);
        let served = server.finalize(7, 2).unwrap();

        let (decision, features) = ht.decide_batch(&capture).unwrap();
        let d = served.decision.expect("decision");
        assert_eq!(d.live, decision.live);
        assert_eq!(d.facing, decision.facing);
        assert_eq!(
            d.live_probability.to_bits(),
            decision.live_probability.to_bits()
        );
        assert_eq!(d.facing_score.to_bits(), decision.facing_score.to_bits());
        assert_eq!(served.features.len(), features.len());
        for (a, b) in served.features.iter().zip(&features) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(server.stats().live, 0, "finalize closes the session");
    }

    #[test]
    fn duplicate_and_unknown_sessions_are_typed() {
        let ht = toy_pipeline();
        let server = WakeServer::new(&ht, serve_config(&ht));
        server.open(1, 0).unwrap();
        assert_eq!(server.open(1, 0), Err(ServeError::DuplicateSession(1)));
        assert_eq!(
            server.push(99, &[&[0.0][..]; 4], 0).unwrap_err(),
            ServeError::UnknownSession(99)
        );
        assert!(matches!(
            server.finalize(99, 0),
            Err(ServeError::UnknownSession(99))
        ));
    }

    #[test]
    fn rejected_opens_consume_nothing_and_leave_no_state() {
        let ht = toy_pipeline();
        let mut config = serve_config(&ht);
        config.bucket.capacity = 2;
        let server = WakeServer::new(&ht, config);

        // Shard 0 holds ids 0, 2, 4, …; fill its two slots.
        server.open(0, 0).unwrap();
        server.open(2, 0).unwrap();
        // Shard full: refused *before* the bucket, so no token burns.
        assert_eq!(
            server.open(4, 0),
            Err(ServeError::Rejected(RejectReason::ShardFull {
                shard: 0,
                capacity: 2
            }))
        );
        assert_eq!(server.tokens_available(0), 0, "both tokens went to admits");
        // Bucket empty: shard 1 has room but the rate limiter refuses.
        assert_eq!(
            server.open(1, 0),
            Err(ServeError::Rejected(RejectReason::RateLimited {
                retry_after_ns: None
            }))
        );
        let stats = server.stats();
        assert_eq!(stats.live, 2);
        assert_eq!(stats.shards[1].live, 0, "rejected open left no state");
        assert_eq!(stats.shards[1].slots_built, 0);
    }

    #[test]
    fn geometry_violation_evicts_eagerly() {
        let ht = toy_pipeline();
        let server = WakeServer::new(&ht, serve_config(&ht));
        server.open(3, 0).unwrap();
        // 2 channels into a 4-channel session: geometry violation.
        let bad: Vec<&[f64]> = vec![&[0.0; 16], &[0.0; 16]];
        let err = server.push(3, &bad, 1).unwrap_err();
        assert_eq!(
            err,
            ServeError::Evicted {
                id: 3,
                cause: StreamError::ChannelCountChanged {
                    expected: 4,
                    got: 2
                }
            }
        );
        assert_eq!(server.stats().live, 0, "evicted immediately");
        assert_eq!(
            server.push(3, &bad, 2).unwrap_err(),
            ServeError::UnknownSession(3),
            "the id is closed after eviction"
        );
    }

    #[test]
    fn eager_eviction_keeps_arena_marks_flat() {
        // Satellite regression: before eager eviction, each failed session
        // left its slot pinned, so repeated failures grew the arena until
        // the shard wedged. Now the marks must stay flat.
        let ht = toy_pipeline();
        let server = WakeServer::new(&ht, serve_config(&ht));
        let bad: Vec<&[f64]> = vec![&[0.0; 16]; 2];
        for round in 0..20 {
            server.open(0, round).unwrap();
            assert!(matches!(
                server.push(0, &bad, round).unwrap_err(),
                ServeError::Evicted { .. }
            ));
            let shard0 = server.stats().shards[0];
            assert_eq!(shard0.slots_built, 1, "round {round}: slots never grow");
            assert_eq!(shard0.live_hwm, 1, "round {round}: hwm stays flat");
            assert_eq!(shard0.live, 0, "round {round}: nothing stays pinned");
        }
    }

    #[test]
    fn finalize_time_counts_as_activity() {
        // Satellite regression: `finalize` used to ignore its `now_ns`, so
        // a failed (retryable) finalize left `last_active_ns` at the last
        // push — the session could be idle-evicted relative to a moment it
        // was demonstrably active.
        let ht = toy_pipeline();
        let server = WakeServer::new(&ht, serve_config(&ht)); // 1 s timeout
        server.open(0, 0).unwrap();
        // One 16-sample push at t=0: far too short to hold a frame.
        let tiny = noise_capture(0x33, 4, 16);
        let views: Vec<&[f64]> = tiny.iter().map(Vec::as_slice).collect();
        server.push(0, &views, 0).unwrap();
        // Retryable finalize at t=0.5 s: fails, but counts as activity.
        assert!(matches!(
            server.finalize(0, 500_000_000),
            Err(ServeError::Pipeline(_))
        ));
        assert_eq!(server.stats().live, 1, "retryable finalize keeps it open");
        // At t=1.5 s the session is 1.0 s idle relative to the finalize —
        // not past the 1 s timeout. Measured from the push it would be
        // 1.5 s idle and wrongly evicted.
        assert_eq!(server.evict_idle(1_500_000_000), 0);
        assert_eq!(server.stats().live, 1);
        assert_eq!(server.evict_idle(1_500_000_001), 1, "now truly idle");
    }

    #[test]
    fn undecidable_finalize_is_retryable_with_more_audio() {
        let ht = toy_pipeline();
        let server = WakeServer::new(&ht, serve_config(&ht));
        server.open(0, 0).unwrap();
        let tiny = noise_capture(0x44, 4, 64);
        let views: Vec<&[f64]> = tiny.iter().map(Vec::as_slice).collect();
        server.push(0, &views, 0).unwrap();
        assert!(matches!(
            server.finalize(0, 1),
            Err(ServeError::Pipeline(_))
        ));
        // The stream state survived the failed attempt: feed a decidable
        // capture and retry.
        let rest = noise_capture(0x45, 4, 4800);
        push_all(&server, 0, &rest, 2);
        let outcome = server.finalize(0, 3).expect("retry decides");
        assert!(outcome.decision.is_some());
        assert_eq!(server.stats().live, 0);
    }

    #[test]
    fn close_releases_without_deciding() {
        let ht = toy_pipeline();
        let server = WakeServer::new(&ht, serve_config(&ht));
        server.open(0, 0).unwrap();
        server.close(0).unwrap();
        assert_eq!(server.stats().live, 0);
        assert_eq!(server.close(0), Err(ServeError::UnknownSession(0)));
        // The slot is recycled, not rebuilt.
        server.open(2, 1).unwrap();
        assert_eq!(server.stats().shards[0].slots_built, 1);
    }

    #[test]
    fn evict_idle_boundary_is_exclusive() {
        // Satellite: a session idle *exactly* the timeout is not evicted —
        // eviction requires idle time strictly greater.
        let ht = toy_pipeline();
        let server = WakeServer::new(&ht, serve_config(&ht)); // 1 s timeout
        server.open(0, 1_000).unwrap();
        assert_eq!(
            server.evict_idle(1_000_000_999),
            0,
            "just under the boundary"
        );
        assert_eq!(server.evict_idle(1_000_001_000), 0, "exactly at boundary");
        assert_eq!(server.evict_idle(1_000_001_001), 1, "strictly past it");
    }

    #[test]
    fn evict_idle_never_underflows_on_early_clocks() {
        // Satellite: `now_ns` earlier than a session's last activity (clock
        // skew, reordered events) or smaller than the timeout itself must
        // not wrap around into a huge idle time.
        let ht = toy_pipeline();
        let server = WakeServer::new(&ht, serve_config(&ht)); // 1 s timeout
        server.open(0, 5_000_000_000).unwrap();
        assert_eq!(server.evict_idle(0), 0, "now < timeout");
        assert_eq!(server.evict_idle(4_000_000_000), 0, "now < last_active");
        assert_eq!(server.stats().live, 1);
    }

    #[test]
    fn finalize_batch_matches_single_finalize() {
        let ht = toy_pipeline();
        let captures: Vec<Vec<Vec<f64>>> = (0..4)
            .map(|i| noise_capture(0x60 + i, 4, 4800 + 480 * i as usize))
            .collect();

        // Drive two identical servers identically; finalize one per id and
        // the other in a single batch.
        let single = WakeServer::new(&ht, serve_config(&ht));
        let batch = WakeServer::new(&ht, serve_config(&ht));
        for (i, capture) in captures.iter().enumerate() {
            let id = i as u64;
            single.open(id, 0).unwrap();
            batch.open(id, 0).unwrap();
            push_all(&single, id, capture, 1);
            push_all(&batch, id, capture, 1);
        }
        // The batch includes an unknown id; order is preserved.
        let results = batch.finalize_batch(&[0, 99, 1, 2, 3], 2);
        assert_eq!(results.len(), 5);
        assert_eq!(results[1].0, 99);
        assert!(matches!(results[1].1, Err(ServeError::UnknownSession(99))));
        for (id, result) in results.into_iter().filter(|(id, _)| *id != 99) {
            let b = result.expect("batch outcome");
            let s = single.finalize(id, 2).expect("single outcome");
            assert_eq!(b.verdict, s.verdict, "session {id}");
            let (bd, sd) = (b.decision.unwrap(), s.decision.unwrap());
            assert_eq!(
                bd.live_probability.to_bits(),
                sd.live_probability.to_bits(),
                "session {id}: live bits"
            );
            assert_eq!(
                bd.facing_score.to_bits(),
                sd.facing_score.to_bits(),
                "session {id}: facing bits"
            );
            assert_eq!(b.features.len(), s.features.len());
            for (x, y) in b.features.iter().zip(&s.features) {
                assert_eq!(x.to_bits(), y.to_bits(), "session {id}: feature bits");
            }
        }
        assert_eq!(batch.stats().live, 0);
        assert_eq!(single.stats().live, 0);
    }

    #[test]
    fn prewarm_moves_slot_construction_off_the_open_path() {
        let ht = toy_pipeline();
        let mut config = serve_config(&ht);
        config.prewarm_slots = 2;
        let server = WakeServer::new(&ht, config);
        let stats = server.stats();
        assert_eq!(stats.slots_built, 4, "2 slots × 2 shards built at startup");
        assert_eq!(stats.live, 0);
        // Opens reuse the prewarmed slots: `built` stays flat.
        server.open(0, 0).unwrap();
        server.open(1, 0).unwrap();
        server.open(2, 0).unwrap();
        server.open(3, 0).unwrap();
        assert_eq!(server.stats().slots_built, 4, "no lazy construction");
        // Explicit prewarm is idempotent once the target is met.
        for id in 0..4 {
            server.close(id).unwrap();
        }
        assert_eq!(server.prewarm(2).unwrap(), 0);
        assert_eq!(
            server.prewarm(1).unwrap(),
            0,
            "smaller target builds nothing"
        );
    }

    #[test]
    fn finalize_batch_with_repeated_ids_matches_serial_semantics() {
        let ht = toy_pipeline();
        let server = WakeServer::new(&ht, serve_config(&ht));
        let good = noise_capture(0x90, 4, 4800);
        let tiny = noise_capture(0x91, 4, 32);
        server.open(0, 0).unwrap();
        server.open(1, 0).unwrap();
        push_all(&server, 0, &good, 1);
        let views: Vec<&[f64]> = tiny.iter().map(Vec::as_slice).collect();
        server.push(1, &views, 1).unwrap();

        // id 0 decides on its first occurrence, so the repeat sees a
        // closed session; id 1 is retryable on both occurrences — exactly
        // what two serial finalize calls per id produce.
        let results = server.finalize_batch(&[0, 1, 0, 1], 2);
        assert!(results[0].1.is_ok());
        assert!(matches!(&results[1].1, Err(ServeError::Pipeline(_))));
        assert!(matches!(&results[2].1, Err(ServeError::UnknownSession(0))));
        assert!(matches!(&results[3].1, Err(ServeError::Pipeline(_))));
        assert_eq!(server.stats().live, 1, "retryable session stays open");
        server.close(1).unwrap();
    }

    #[test]
    fn retryable_finalize_reuses_the_cached_directivity_flush() {
        // An exactly silent capture holds analysis frames, so assembly
        // runs the directivity flush before the zero-variance liveness
        // input rejects it — the retryable path. (Silence is the one
        // capture whose decimated branch is *numerically* constant; a DC
        // level leaves FIR ripple and decides.) Retries without new
        // audio must hit the flush cache and perform zero additional
        // FFTs; new audio must invalidate it.
        let ht = toy_pipeline();
        let server = WakeServer::new(&ht, serve_config(&ht));
        server.open(0, 0).unwrap();
        let dc = vec![vec![0.0; 28_800]; 4];
        push_all(&server, 0, &dc, 1);

        let flush_ffts = |server: &WakeServer<'_>| {
            let shard = server.shards[server.shard_of(0)].lock().unwrap();
            let slot = shard.sessions.get(&0).expect("session open").slot;
            shard.arena.slot(slot).directivity_flush_ffts()
        };

        assert!(matches!(
            server.finalize(0, 2),
            Err(ServeError::Pipeline(_))
        ));
        let after_first = flush_ffts(&server);
        assert_eq!(after_first, 1, "first finalize transforms the tail once");
        for now in 3..6 {
            assert!(matches!(
                server.finalize(0, now),
                Err(ServeError::Pipeline(_))
            ));
        }
        assert_eq!(
            flush_ffts(&server),
            after_first,
            "retries with no new audio must not re-run the flush FFT"
        );
        // The batch path retries through the same cache.
        let results = server.finalize_batch(&[0], 6);
        assert!(matches!(&results[0].1, Err(ServeError::Pipeline(_))));
        assert_eq!(flush_ffts(&server), after_first);
        // New audio moves the epoch: the next attempt transforms again
        // (still retryable — the liveness center-crop stays silent — but
        // the cache was correctly invalidated).
        let more = noise_capture(0x92, 4, 480);
        let views: Vec<&[f64]> = more.iter().map(Vec::as_slice).collect();
        server.push(0, &views, 7).unwrap();
        assert!(matches!(
            server.finalize(0, 8),
            Err(ServeError::Pipeline(_))
        ));
        assert_eq!(
            flush_ffts(&server),
            after_first + 1,
            "new audio must invalidate the cached flush"
        );
        server.close(0).unwrap();
    }

    #[test]
    fn finalize_batch_keeps_undecidable_sessions_open() {
        let ht = toy_pipeline();
        let server = WakeServer::new(&ht, serve_config(&ht));
        let good = noise_capture(0x70, 4, 4800);
        let tiny = noise_capture(0x71, 4, 32);
        server.open(0, 0).unwrap();
        server.open(1, 0).unwrap();
        push_all(&server, 0, &good, 1);
        let views: Vec<&[f64]> = tiny.iter().map(Vec::as_slice).collect();
        server.push(1, &views, 1).unwrap();

        let results = server.finalize_batch(&[0, 1], 2);
        assert!(results[0].1.is_ok(), "decidable neighbour unaffected");
        assert!(matches!(&results[1].1, Err(ServeError::Pipeline(_))));
        assert_eq!(server.stats().live, 1, "undecidable session stays open");
        server.close(1).unwrap();
    }

    /// Panics while holding the given lock from another thread, leaving it
    /// poisoned.
    fn poison<T>(lock: &Mutex<T>)
    where
        T: Send,
    {
        std::thread::scope(|s| {
            let handle = s.spawn(|| {
                let _guard = lock.lock().unwrap();
                panic!("poisoning the lock under test");
            });
            assert!(handle.join().is_err());
        });
        assert!(lock.lock().is_err(), "lock is poisoned");
    }

    #[test]
    fn poisoned_shard_is_a_typed_error_for_request_paths() {
        // Satellite regression: every request entry point used to
        // `expect("shard lock")`, so one panicked handler turned every
        // subsequent request on that shard into a panic of its own. Now
        // requests get a typed error, other shards keep serving, and the
        // maintenance paths still reach the wrecked shard.
        let ht = toy_pipeline();
        let server = WakeServer::new(&ht, serve_config(&ht));
        server.open(0, 0).unwrap();
        server.open(1, 0).unwrap();
        poison(&server.shards[0]);

        let chunk = noise_capture(0x50, 4, 16);
        let views: Vec<&[f64]> = chunk.iter().map(Vec::as_slice).collect();
        assert_eq!(server.open(2, 1), Err(ServeError::LockPoisoned("shard")));
        assert_eq!(
            server.push(0, &views, 1).unwrap_err(),
            ServeError::LockPoisoned("shard")
        );
        assert!(matches!(
            server.finalize(0, 1),
            Err(ServeError::LockPoisoned("shard"))
        ));
        assert_eq!(server.close(0), Err(ServeError::LockPoisoned("shard")));
        // Shard 1 (odd ids) is unaffected by shard 0's corpse.
        server.push(1, &views, 1).unwrap();
        // A batch fails only the wrecked shard's members.
        let results = server.finalize_batch(&[0, 1], 2);
        assert!(matches!(
            &results[0].1,
            Err(ServeError::LockPoisoned("shard"))
        ));
        assert!(
            !matches!(&results[1].1, Err(ServeError::LockPoisoned(_))),
            "healthy shard member decided independently"
        );
        // Diagnostics and the reaper recover the poisoned lock: the
        // sessions are still visible and idle eviction still frees slots.
        assert_eq!(server.stats().live, 2);
        assert_eq!(server.evict_idle(u64::MAX), 2);
        assert_eq!(server.stats().live, 0);
    }

    #[test]
    fn poisoned_bucket_is_typed_for_open_and_recovered_for_reads() {
        let ht = toy_pipeline();
        let server = WakeServer::new(&ht, serve_config(&ht));
        poison(&server.bucket);
        assert_eq!(server.open(0, 0), Err(ServeError::LockPoisoned("bucket")));
        assert_eq!(server.tokens_available(0), 64, "read path recovers");
    }

    #[test]
    fn int8_pipeline_serves_with_batch_single_and_solo_agreement() {
        // The server inherits the pipeline's quantization mode through
        // `infer_assembled`: an int8-calibrated pipeline must serve with
        // the same bits whether a session is finalized solo, singly, or
        // batched.
        let mut ht = toy_pipeline();
        let captures: Vec<Vec<Vec<f64>>> = (0..3)
            .map(|i| noise_capture(0x80 + i, 4, 4800 + 480 * i as usize))
            .collect();
        ht.enable_int8(&captures).expect("calibration");
        assert_eq!(ht.quant_mode(), headtalk::QuantMode::Int8);

        let single = WakeServer::new(&ht, serve_config(&ht));
        let batch = WakeServer::new(&ht, serve_config(&ht));
        for (i, capture) in captures.iter().enumerate() {
            let id = i as u64;
            single.open(id, 0).unwrap();
            batch.open(id, 0).unwrap();
            push_all(&single, id, capture, 1);
            push_all(&batch, id, capture, 1);
        }
        for (id, result) in batch.finalize_batch(&[0, 1, 2], 2) {
            let b = result.expect("batch outcome");
            let s = single.finalize(id, 2).expect("single outcome");
            let solo = ht.decide_batch(&captures[id as usize]).unwrap().0;
            let (bd, sd) = (b.decision.unwrap(), s.decision.unwrap());
            assert_eq!(
                bd.live_probability.to_bits(),
                sd.live_probability.to_bits(),
                "session {id}: batch vs single live bits"
            );
            assert_eq!(
                bd.live_probability.to_bits(),
                solo.live_probability.to_bits(),
                "session {id}: served vs solo live bits"
            );
            assert_eq!(bd.facing_score.to_bits(), sd.facing_score.to_bits());
            assert_eq!(bd.facing_score.to_bits(), solo.facing_score.to_bits());
        }
    }

    #[test]
    fn idle_sessions_are_evicted_and_slots_recycled() {
        let ht = toy_pipeline();
        let server = WakeServer::new(&ht, serve_config(&ht));
        server.open(0, 0).unwrap();
        server.open(1, 0).unwrap();
        // id 1 stays active; id 0 goes idle past the 1 s timeout.
        let chunk = noise_capture(0x22, 4, 480);
        let views: Vec<&[f64]> = chunk.iter().map(Vec::as_slice).collect();
        server.push(1, &views, 1_500_000_000).unwrap();
        assert_eq!(server.evict_idle(2_000_000_000), 1);
        assert_eq!(
            server.push(0, &views, 2_000_000_001).unwrap_err(),
            ServeError::UnknownSession(0)
        );
        assert_eq!(server.stats().live, 1, "active session survives");
        // The freed slot serves a new session without building another.
        server.open(2, 2_000_000_002).unwrap();
        assert_eq!(server.stats().shards[0].slots_built, 1);
    }
}
