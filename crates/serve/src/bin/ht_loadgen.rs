//! `ht_loadgen` — deterministic load generator for the wake-word server.
//!
//! Replays thousands of synthetic wake events through a [`WakeServer`]
//! under a seeded interleaving schedule. Results (every decision bit and
//! rejection) are fully determined by `(--seed, scenario set)` at any
//! `HT_THREADS`; the printed checksum is the replay fingerprint. Wall-clock
//! throughput is reported for the operator but never feeds back into
//! results.
//!
//! ```text
//! ht_loadgen [--sessions N] [--seed S] [--shards N] [--slots N]
//!            [--bucket-capacity N] [--refill-per-sec N] [--spacing-ns N]
//!            [--chunk-min N] [--chunk-max N] [--captures N] [--render]
//! ```
//!
//! By default sessions stream seeded noise captures (fast, serving-layer
//! focused); `--render` draws the captures from `ht-datagen`'s
//! `serve_scenarios` acoustic renders instead (slower startup, exercises
//! real accept/reject decision traffic). Set `HT_OBS=json` or
//! `HT_OBS=text` for the per-stage latency histograms and serve counters.

use std::time::Instant;

use ht_serve::{
    noise_captures, run_load, toy_pipeline, LoadConfig, ServeConfig, TokenBucketConfig, WakeServer,
};

struct Args {
    sessions: usize,
    seed: u64,
    shards: usize,
    slots: usize,
    bucket_capacity: u64,
    refill_per_sec: u64,
    spacing_ns: u64,
    chunk_min: usize,
    chunk_max: usize,
    captures: usize,
    render: bool,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            sessions: 2000,
            seed: 0x10AD,
            shards: 4,
            slots: 64,
            bucket_capacity: 256,
            refill_per_sec: 1_000_000,
            spacing_ns: 1_000_000,
            chunk_min: 120,
            chunk_max: 960,
            captures: 8,
            render: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: ht_loadgen [--sessions N] [--seed S] [--shards N] [--slots N]\n\
         \x20                 [--bucket-capacity N] [--refill-per-sec N] [--spacing-ns N]\n\
         \x20                 [--chunk-min N] [--chunk-max N] [--captures N] [--render]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--render" {
            args.render = true;
            continue;
        }
        if flag == "--help" || flag == "-h" {
            usage();
        }
        let value = it.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage();
        });
        // Seeds are conventionally written in hex throughout the repo
        // (HT_CHECK_SEED replay lines), so accept an 0x prefix everywhere.
        let parse = |what: &str| -> u64 {
            let parsed = match value.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => value.parse(),
            };
            parsed.unwrap_or_else(|_| {
                eprintln!("bad {what}: {value:?}");
                usage();
            })
        };
        match flag.as_str() {
            "--sessions" => args.sessions = parse("session count") as usize,
            "--seed" => args.seed = parse("seed"),
            "--shards" => args.shards = parse("shard count") as usize,
            "--slots" => args.slots = parse("slot count") as usize,
            "--bucket-capacity" => args.bucket_capacity = parse("bucket capacity"),
            "--refill-per-sec" => args.refill_per_sec = parse("refill rate"),
            "--spacing-ns" => args.spacing_ns = parse("spacing"),
            "--chunk-min" => args.chunk_min = parse("chunk min") as usize,
            "--chunk-max" => args.chunk_max = parse("chunk max") as usize,
            "--captures" => args.captures = parse("capture count") as usize,
            _ => {
                eprintln!("unknown flag {flag}");
                usage();
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let ht = toy_pipeline();

    eprintln!(
        "loadgen: {} sessions, seed {:#x}, {} shards x {} slots, bucket {}+{}/s, chunks {}..={}",
        args.sessions,
        args.seed,
        args.shards,
        args.slots,
        args.bucket_capacity,
        args.refill_per_sec,
        args.chunk_min,
        args.chunk_max,
    );

    let captures: Vec<Vec<Vec<f64>>> = if args.render {
        eprintln!(
            "loadgen: rendering {} ht-datagen serve scenarios...",
            args.captures
        );
        let specs = ht_datagen::datasets::serve_scenarios(args.captures, args.seed);
        ht_par::par_map(&specs, |spec| spec.render().expect("scenario render"))
    } else {
        noise_captures(args.captures, 4, 4800, 480, args.seed)
    };

    let server = WakeServer::new(
        &ht,
        ServeConfig {
            n_shards: args.shards,
            sessions_per_shard: args.slots,
            bucket: TokenBucketConfig {
                capacity: args.bucket_capacity,
                refill_per_sec: args.refill_per_sec,
            },
            ..ServeConfig::for_pipeline(ht.config())
        },
    );
    let config = LoadConfig {
        seed: args.seed,
        n_sessions: args.sessions,
        open_spacing_ns: args.spacing_ns,
        chunk_min: args.chunk_min,
        chunk_max: args.chunk_max,
    };

    let start = Instant::now();
    let report = match run_load(&server, &captures, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen: drive failed: {e}");
            std::process::exit(1);
        }
    };
    let elapsed = start.elapsed().as_secs_f64();
    let stats = server.stats();

    println!("sessions          {}", args.sessions);
    println!("decided           {}", report.decided);
    println!("  accepted        {}", report.accepted);
    println!("  soft-muted      {}", report.soft_muted);
    println!("rejected (rate)   {}", report.rejected_rate);
    println!("rejected (full)   {}", report.rejected_capacity);
    println!("frames            {}", report.frames);
    println!("samples           {}", report.samples);
    println!("slots built       {}", stats.slots_built);
    println!("checksum          {:#018x}", report.checksum);
    println!(
        "wall clock        {elapsed:.3} s  ({:.0} decisions/s, {} threads)",
        report.decided as f64 / elapsed.max(1e-9),
        ht_par::current_threads(),
    );

    let obs = ht_obs::registry().snapshot();
    if !obs.is_empty() {
        eprintln!("{}", obs.summary_table());
    }
}
