//! Shared experiment context: scale/threading knobs plus lazily-computed,
//! disk-cached feature tables for every dataset.

use crate::cache::{self, Record};
use headtalk::{HeadTalk, PipelineConfig};
use ht_acoustics::array::Device;
use ht_datagen::placements::Placement;
use ht_datagen::{datasets, CaptureSpec};

/// Experiment-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct Context {
    /// Keep every `scale`-th sample (1 = the paper's full counts). Useful
    /// for quick passes; cache entries are scale-specific.
    pub scale: usize,
    /// Worker threads for rendering. Thanks to the ht-par determinism
    /// contract this only affects wall-clock time, never the rendered
    /// features.
    pub threads: usize,
}

impl Default for Context {
    fn default() -> Self {
        Context {
            scale: 1,
            threads: ht_par::default_threads(),
        }
    }
}

impl Context {
    /// Reads `HT_SCALE` / `HT_THREADS` from the environment.
    pub fn from_env() -> Context {
        let mut ctx = Context::default();
        if let Ok(s) = std::env::var("HT_SCALE") {
            if let Ok(v) = s.parse::<usize>() {
                ctx.scale = v.max(1);
            }
        }
        if let Ok(s) = std::env::var("HT_THREADS") {
            if let Ok(v) = s.parse::<usize>() {
                ctx.threads = v.max(1);
            }
        }
        ctx
    }

    /// Applies the scale knob: keeps every `scale`-th spec.
    pub fn subsample(&self, specs: Vec<CaptureSpec>) -> Vec<CaptureSpec> {
        if self.scale <= 1 {
            return specs;
        }
        specs
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % self.scale == 0)
            .map(|(_, s)| s)
            .collect()
    }

    fn cache_name(&self, base: &str) -> String {
        if self.scale <= 1 {
            base.to_string()
        } else {
            format!("{base}_s{}", self.scale)
        }
    }

    /// Maps `f` over capture specs on `self.threads` workers, reusing the
    /// innermost installed ht-par pool when it already has that width.
    fn render_map<U, F>(&self, specs: &[CaptureSpec], f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(&CaptureSpec) -> U + Sync,
    {
        if ht_par::current_threads() == self.threads {
            ht_par::par_map(specs, f)
        } else {
            ht_par::Pool::new(self.threads).par_map(specs, f)
        }
    }

    /// Renders orientation features for a spec list (default microphone
    /// subset, per-device configuration), cached under `name`.
    pub fn orientation_features(&self, name: &str, specs: Vec<CaptureSpec>) -> Vec<Record> {
        let specs = self.subsample(specs);
        cache::load_or_compute(&self.cache_name(name), || {
            eprintln!("[cache] rendering {} captures for `{name}`…", specs.len());
            self.render_map(&specs, |spec| {
                let cfg = PipelineConfig::for_device(spec.device);
                let channels = spec.render().expect("valid scenario geometry");
                let vector = HeadTalk::orientation_features(&cfg, &channels)
                    .expect("feature extraction on rendered audio");
                Record {
                    spec: *spec,
                    vector,
                }
            })
        })
    }

    /// Renders prepared liveness inputs (16 kHz, fixed length, z-scored)
    /// for a spec list, cached under `name`.
    pub fn liveness_inputs(&self, name: &str, specs: Vec<CaptureSpec>) -> Vec<Record> {
        let specs = self.subsample(specs);
        cache::load_or_compute(&self.cache_name(name), || {
            eprintln!(
                "[cache] rendering {} liveness captures for `{name}`…",
                specs.len()
            );
            self.render_map(&specs, |spec| {
                let cfg = PipelineConfig::for_device(spec.device);
                let channels = spec.render().expect("valid scenario geometry");
                let vector = HeadTalk::liveness_input(&cfg, &channels)
                    .expect("liveness preparation on rendered audio");
                Record {
                    spec: *spec,
                    vector,
                }
            })
        })
    }

    // ---- Dataset accessors ------------------------------------------------

    /// Dataset-1 orientation features (all rooms/devices/words).
    pub fn dataset1(&self) -> Vec<Record> {
        self.orientation_features("dataset1", datasets::dataset1())
    }

    /// Dataset-3 (temporal) features.
    pub fn dataset3(&self) -> Vec<Record> {
        self.orientation_features("dataset3", datasets::dataset3())
    }

    /// Dataset-4 (ambient noise) features.
    pub fn dataset4(&self) -> Vec<Record> {
        self.orientation_features("dataset4", datasets::dataset4())
    }

    /// Dataset-5 (sitting) features.
    pub fn dataset5(&self) -> Vec<Record> {
        self.orientation_features("dataset5", datasets::dataset5())
    }

    /// Dataset-6 (loudness) features.
    pub fn dataset6(&self) -> Vec<Record> {
        self.orientation_features("dataset6", datasets::dataset6())
    }

    /// Dataset-7 (surrounding objects) features.
    pub fn dataset7(&self) -> Vec<Record> {
        self.orientation_features("dataset7", datasets::dataset7())
    }

    /// Dataset-8 (cross-user) features plus participant ids.
    pub fn dataset8(&self) -> (Vec<Record>, Vec<usize>) {
        let (specs, pids) = datasets::dataset8();
        let pids = self
            .subsample(specs.clone())
            .iter()
            .map(|s| {
                let idx = specs
                    .iter()
                    .position(|x| x.seed == s.seed)
                    .expect("spec present");
                pids[idx]
            })
            .collect();
        let records = self.orientation_features("dataset8", specs);
        (records, pids)
    }

    /// The ±75° verification captures for Table III.
    pub fn table3_extra(&self) -> Vec<Record> {
        self.orientation_features("table3_extra", datasets::table3_extra_angles())
    }

    /// §IV-B7 placement captures for location B or C.
    pub fn placement(&self, placement: Placement) -> Vec<Record> {
        let name = match placement {
            Placement::LabB => "placement_b",
            Placement::LabC => "placement_c",
            _ => "placement_other",
        };
        self.orientation_features(name, datasets::placement_specs(placement))
    }

    /// D2/lab/"Computer" captures rendered with **all six** microphones —
    /// the §IV-B6 mic-count experiment extracts per-subset features from
    /// these. Returned records hold the concatenated 6-channel audio
    /// *features per subset*, so this accessor instead exposes raw audio:
    /// rendering is done inside [`Context::table4_subset_features`].
    pub fn table4_subset_features(&self, mic_indices: &[usize]) -> Vec<Record> {
        let name = Self::table4_cache_name(mic_indices);
        if let Some(records) = cache::load(&self.cache_name(&name)) {
            return records;
        }
        // Miss: render each capture once with all six microphones and fill
        // the caches for *all* subsets in one pass (§IV-B6 reuses the same
        // recordings for every channel count).
        self.warm_table4_subsets();
        cache::load(&self.cache_name(&name)).expect("warm_table4_subsets fills every subset")
    }

    fn table4_cache_name(mic_indices: &[usize]) -> String {
        let tag: String = mic_indices.iter().map(|i| i.to_string()).collect();
        format!("table4_m{tag}")
    }

    /// Renders the §IV-B6 captures (D2, lab, "Computer") once with all six
    /// microphones and extracts features for every Table IV subset.
    pub fn warm_table4_subsets(&self) {
        let subsets: Vec<Vec<usize>> = vec![
            vec![0, 1],
            vec![0, 1, 4],
            vec![0, 1, 3, 4],
            vec![0, 1, 2, 3, 4],
            vec![0, 1, 2, 3, 4, 5],
        ];
        if subsets
            .iter()
            .all(|m| cache::load(&self.cache_name(&Self::table4_cache_name(m))).is_some())
        {
            return;
        }
        let specs: Vec<CaptureSpec> = datasets::dataset1()
            .into_iter()
            .filter(|s| {
                s.room == ht_datagen::placements::RoomKind::Lab
                    && s.device == Device::D2
                    && s.wake_word == ht_speech::WakeWord::Computer
            })
            .collect();
        let specs = self.subsample(specs);
        eprintln!(
            "[cache] rendering {} six-mic captures for the Table IV subsets…",
            specs.len()
        );
        let all_mics: Vec<usize> = (0..6).collect();
        let cfg = PipelineConfig::for_device(Device::D2);
        // One render per capture; one feature vector per subset.
        let per_capture: Vec<Vec<Vec<f64>>> = self.render_map(&specs, |spec| {
            let channels = spec
                .render_mics(Some(&all_mics))
                .expect("valid scenario geometry");
            let pre =
                headtalk::preprocess::Preprocessor::new(&cfg).expect("valid preprocessing config");
            let denoised = pre.denoise_channels(&channels).expect("non-empty capture");
            subsets
                .iter()
                .map(|mics| {
                    let sub: Vec<Vec<f64>> = mics.iter().map(|&m| denoised[m].clone()).collect();
                    headtalk::features::extract(&sub, &cfg)
                        .expect("feature extraction on rendered audio")
                })
                .collect()
        });
        for (k, mics) in subsets.iter().enumerate() {
            let records: Vec<Record> = specs
                .iter()
                .zip(per_capture.iter())
                .map(|(spec, vectors)| Record {
                    spec: *spec,
                    vector: vectors[k].clone(),
                })
                .collect();
            let name = self.cache_name(&Self::table4_cache_name(mics));
            if let Err(e) = cache::store(&name, &records) {
                eprintln!("warning: could not write cache `{name}`: {e}");
            }
        }
    }

    /// ASVspoof-sim liveness pre-training corpus (prepared inputs).
    pub fn liveness_asvspoof(&self) -> Vec<Record> {
        let (specs, _) = datasets::asvspoof_sim(300, 0xA5F);
        self.liveness_inputs("liveness_asvspoof", specs)
    }

    /// The paper's "own data" liveness evaluation set: 1008 live samples
    /// (Dataset-1: D2, lab, the two Dataset-2 wake words) plus the 1008
    /// Dataset-2 Sony replays = 2016 samples (§IV-A1).
    pub fn liveness_own(&self) -> Vec<Record> {
        let mut specs: Vec<CaptureSpec> = datasets::dataset1()
            .into_iter()
            .filter(|s| {
                s.room == ht_datagen::placements::RoomKind::Lab
                    && s.device == Device::D2
                    && (s.wake_word == ht_speech::WakeWord::Computer
                        || s.wake_word == ht_speech::WakeWord::HeyAssistant)
            })
            .collect();
        specs.extend(datasets::dataset2());
        self.liveness_inputs("liveness_own", specs)
    }
}

/// Splits records into per-class label/feature views for a facing
/// definition, returning `(features, labels, angles)` for records whose
/// angle the definition labels.
pub fn labeled_views(
    records: &[Record],
    def: headtalk::facing::FacingDefinition,
) -> (Vec<Vec<f64>>, Vec<usize>, Vec<f64>) {
    let mut feats = Vec::new();
    let mut labels = Vec::new();
    let mut angles = Vec::new();
    for r in records {
        if let Some(l) = def.label(r.spec.angle_deg) {
            feats.push(r.vector.clone());
            labels.push(l);
            angles.push(r.spec.angle_deg);
        }
    }
    (feats, labels, angles)
}

/// Builds an `ht_ml` dataset from labeled views.
///
/// # Panics
///
/// Panics when `feats` is empty (an experiment asked for an impossible
/// slice).
pub fn to_dataset(feats: Vec<Vec<f64>>, labels: Vec<usize>) -> ht_ml::Dataset {
    ht_ml::Dataset::from_parts(feats, labels).expect("non-empty homogeneous features")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsample_keeps_every_kth() {
        let ctx = Context {
            scale: 3,
            threads: 1,
        };
        let specs: Vec<CaptureSpec> = (0..10).map(CaptureSpec::baseline).collect();
        let sub = ctx.subsample(specs);
        assert_eq!(sub.len(), 4); // indices 0, 3, 6, 9
        assert_eq!(sub[1].seed, 3);
    }

    #[test]
    fn scale_one_is_identity() {
        let ctx = Context {
            scale: 1,
            threads: 1,
        };
        let specs: Vec<CaptureSpec> = (0..5).map(CaptureSpec::baseline).collect();
        assert_eq!(ctx.subsample(specs).len(), 5);
    }

    #[test]
    fn cache_names_embed_scale() {
        let full = Context {
            scale: 1,
            threads: 1,
        };
        let quick = Context {
            scale: 8,
            threads: 1,
        };
        assert_eq!(full.cache_name("x"), "x");
        assert_eq!(quick.cache_name("x"), "x_s8");
    }

    #[test]
    fn env_parsing_defaults_are_sane() {
        let ctx = Context::from_env();
        assert!(ctx.scale >= 1);
        assert!(ctx.threads >= 1);
    }

    #[test]
    fn labeled_views_filter_excluded_angles() {
        let mut records = Vec::new();
        for (i, angle) in [0.0, 45.0, 90.0].iter().enumerate() {
            let mut spec = CaptureSpec::baseline(i as u64);
            spec.angle_deg = *angle;
            records.push(Record {
                spec,
                vector: vec![i as f64],
            });
        }
        let (f, l, a) = labeled_views(&records, headtalk::facing::FacingDefinition::Definition4);
        // 45° is excluded under Definition-4.
        assert_eq!(f.len(), 2);
        assert_eq!(l, vec![1, 0]);
        assert_eq!(a, vec![0.0, 90.0]);
    }
}
