//! # ht-experiments — the reproduction harness
//!
//! One module per table/figure of the paper's evaluation (§IV–§V). Each
//! experiment renders (or loads from the on-disk cache) the simulated
//! dataset it needs, trains the models with the paper's protocol, and
//! returns a [`report::ExperimentResult`] with paper-vs-measured rows.
//!
//! Run everything through the `headtalk-repro` binary:
//!
//! ```text
//! headtalk-repro all            # every experiment, full sample counts
//! headtalk-repro table3 fig10   # selected experiments
//! headtalk-repro --list
//! HT_SCALE=4 headtalk-repro all # keep every 4th sample (quick pass)
//! ```

pub mod cache;
pub mod context;
pub mod exp;
pub mod obs;
pub mod report;

pub use context::Context;
pub use report::{ExperimentResult, Row};

/// All experiment ids in presentation order.
pub const EXPERIMENT_IDS: &[&str] = &[
    "fig3",
    "fig5",
    "fig6",
    "table2",
    "liveness",
    "models",
    "table3",
    "fig10",
    "fig11",
    "distance",
    "fig12",
    "fig13",
    "fig14",
    "table4",
    "placement",
    "crossenv",
    "fig15",
    "ambient",
    "sitting",
    "loudness",
    "objects",
    "fig16",
    "ablation",
    "stream",
    "runtime",
    "table5",
];

/// Runs one experiment by id.
///
/// # Errors
///
/// Returns an error string for unknown ids or failed runs.
pub fn run_experiment(id: &str, ctx: &Context) -> Result<ExperimentResult, String> {
    let result = match id {
        "fig3" => exp::fig3::run(ctx),
        "fig5" => exp::fig5::run(ctx),
        "fig6" => exp::fig6::run(ctx),
        "table2" => exp::table2::run(ctx),
        "liveness" => exp::liveness::run(ctx),
        "models" => exp::models::run(ctx),
        "ablation" => exp::ablation::run(ctx),
        "table3" => exp::table3::run(ctx),
        "fig10" => exp::fig10::run(ctx),
        "fig11" => exp::fig11::run(ctx),
        "distance" => exp::distance::run(ctx),
        "fig12" => exp::fig12::run(ctx),
        "fig13" => exp::fig13::run(ctx),
        "fig14" => exp::fig14::run(ctx),
        "table4" => exp::table4::run(ctx),
        "placement" => exp::placement::run(ctx),
        "crossenv" => exp::crossenv::run(ctx),
        "fig15" => exp::fig15::run(ctx),
        "ambient" => exp::ambient::run(ctx),
        "sitting" => exp::sitting::run(ctx),
        "loudness" => exp::loudness::run(ctx),
        "objects" => exp::objects::run(ctx),
        "fig16" => exp::fig16::run(ctx),
        "stream" => exp::stream::run(ctx),
        "runtime" => exp::runtime::run(ctx),
        "table5" => exp::table5::run(ctx),
        _ => return Err(format!("unknown experiment `{id}`")),
    };
    result.map_err(|e| format!("experiment `{id}` failed: {e}"))
}
