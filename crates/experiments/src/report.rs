//! Experiment result types and rendering.

use ht_dsp::json::{field, FromJson, Json, JsonError, ToJson};

/// One paper-vs-measured row of an experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Row label (a condition: an angle, a device, a definition, …).
    pub label: String,
    /// What the paper reports for this condition (free-form, often "96.95%
    /// accuracy"). Empty when the paper has no directly comparable number.
    pub paper: String,
    /// What this reproduction measured.
    pub measured: String,
    /// Optional numeric value backing `measured` (for regression checks).
    pub value: Option<f64>,
}

impl Row {
    /// Builds a row.
    pub fn new(
        label: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
        value: Option<f64>,
    ) -> Row {
        Row {
            label: label.into(),
            paper: paper.into(),
            measured: measured.into(),
            value,
        }
    }
}

/// The result of one reproduced table/figure.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Experiment id (`table3`, `fig10`, …).
    pub id: String,
    /// Human-readable title (paper artifact).
    pub title: String,
    /// Shape expectations this run should satisfy (for EXPERIMENTS.md).
    pub expectation: String,
    /// The paper-vs-measured rows.
    pub rows: Vec<Row>,
    /// Free-form notes (protocol details, sample counts, …).
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Builds an empty result to be filled with rows.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        expectation: impl Into<String>,
    ) -> ExperimentResult {
        ExperimentResult {
            id: id.into(),
            title: title.into(),
            expectation: expectation.into(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(
        &mut self,
        label: impl Into<String>,
        paper: impl Into<String>,
        measured: impl Into<String>,
        value: Option<f64>,
    ) {
        self.rows.push(Row::new(label, paper, measured, value));
    }

    /// Appends a note.
    pub fn note(&mut self, n: impl Into<String>) {
        self.notes.push(n.into());
    }

    /// Renders as a markdown section (used for stdout and EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {} — {}\n\n", self.id, self.title));
        out.push_str(&format!("*Expected shape:* {}\n\n", self.expectation));
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(["condition".len()])
            .max()
            .unwrap_or(10);
        let paper_w = self
            .rows
            .iter()
            .map(|r| r.paper.len())
            .chain(["paper".len()])
            .max()
            .unwrap_or(10);
        out.push_str(&format!(
            "| {:label_w$} | {:paper_w$} | measured |\n",
            "condition", "paper"
        ));
        out.push_str(&format!(
            "|-{:-<label_w$}-|-{:-<paper_w$}-|----------|\n",
            "", ""
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "| {:label_w$} | {:paper_w$} | {} |\n",
                r.label, r.paper, r.measured
            ));
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                out.push_str(&format!("- {n}\n"));
            }
        }
        out.push('\n');
        out
    }
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("label", self.label.as_str())
            .set("paper", self.paper.as_str())
            .set("measured", self.measured.as_str())
            .set("value", self.value)
    }
}

impl FromJson for Row {
    fn from_json(v: &Json) -> Result<Row, JsonError> {
        Ok(Row {
            label: field(v, "label")?,
            paper: field(v, "paper")?,
            measured: field(v, "measured")?,
            value: field(v, "value")?,
        })
    }
}

impl ToJson for ExperimentResult {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("id", self.id.as_str())
            .set("title", self.title.as_str())
            .set("expectation", self.expectation.as_str())
            .set("rows", self.rows.to_json())
            .set("notes", self.notes.to_json())
    }
}

impl FromJson for ExperimentResult {
    fn from_json(v: &Json) -> Result<ExperimentResult, JsonError> {
        Ok(ExperimentResult {
            id: field(v, "id")?,
            title: field(v, "title")?,
            expectation: field(v, "expectation")?,
            rows: field(v, "rows")?,
            notes: field(v, "notes")?,
        })
    }
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_contains_all_rows() {
        let mut r = ExperimentResult::new("t", "Title", "x beats y");
        r.push_row("a", "90%", "91%", Some(0.91));
        r.push_row("b", "80%", "79%", Some(0.79));
        r.note("protocol note");
        let md = r.to_markdown();
        assert!(md.contains("## t — Title"));
        assert!(md.contains("| a"));
        assert!(md.contains("| 90%"));
        assert!(md.contains("91%"));
        assert!(md.contains("protocol note"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.9695), "96.95%");
        assert_eq!(pct(1.0), "100.00%");
    }

    #[test]
    fn result_serializes() {
        let mut r = ExperimentResult::new("id", "T", "E");
        r.push_row("x", "", "1", Some(1.0));
        r.push_row("y", "90%", "89%", None);
        r.note("a note with \"quotes\"");
        let json = r.to_json().pretty();
        let back = ExperimentResult::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn result_json_is_deterministic() {
        let mut r = ExperimentResult::new("id", "T", "E");
        r.push_row("x", "", "1", Some(0.5));
        assert_eq!(r.to_json().pretty(), r.clone().to_json().pretty());
    }
}
