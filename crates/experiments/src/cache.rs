//! On-disk cache for rendered features.
//!
//! Rendering the full Table II datasets takes tens of minutes on one core,
//! so extracted feature vectors are cached under `target/ht_cache/`. Each
//! cache entry is two files:
//!
//! * `<name>.meta.json` — the [`CaptureSpec`]s plus per-record vector widths,
//! * `<name>.f64` — all vectors concatenated as little-endian `f64`s.

use ht_datagen::CaptureSpec;
use ht_dsp::json::{field, FromJson, Json, JsonError, ToJson};
use std::io::{Read, Write};
use std::path::PathBuf;

/// One cached record: the capture description and its extracted vector
/// (orientation features or a prepared liveness input).
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// What was rendered.
    pub spec: CaptureSpec,
    /// The extracted vector.
    pub vector: Vec<f64>,
}
struct Meta {
    version: u32,
    specs: Vec<CaptureSpec>,
    widths: Vec<u32>,
}

impl ToJson for Meta {
    fn to_json(&self) -> Json {
        Json::obj()
            .set("version", self.version)
            .set("specs", self.specs.to_json())
            .set("widths", self.widths.to_json())
    }
}

impl FromJson for Meta {
    fn from_json(v: &Json) -> Result<Meta, JsonError> {
        Ok(Meta {
            version: field(v, "version")?,
            specs: field(v, "specs")?,
            widths: field(v, "widths")?,
        })
    }
}

/// Bump when feature extraction or the simulator changes incompatibly.
/// v5: planned FFT engine (table twiddles) shifts feature bit patterns.
/// v6: adaptive directivity flush — short captures (< one 32k segment)
/// transform at the next power of two instead of the full segment, which
/// moves their directivity-band feature values.
const CACHE_VERSION: u32 = 6;

/// The cache directory (`target/ht_cache`, created on demand).
pub fn cache_dir() -> PathBuf {
    let mut p = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target"));
    p.push("ht_cache");
    p
}

fn paths(name: &str) -> (PathBuf, PathBuf) {
    let dir = cache_dir();
    (
        dir.join(format!("{name}.meta.json")),
        dir.join(format!("{name}.f64")),
    )
}

/// Loads a cache entry, or `None` when missing/outdated/corrupt.
pub fn load(name: &str) -> Option<Vec<Record>> {
    let (meta_path, data_path) = paths(name);
    let text = std::fs::read_to_string(meta_path).ok()?;
    let meta = Meta::from_json(&Json::parse(&text).ok()?).ok()?;
    if meta.version != CACHE_VERSION || meta.specs.len() != meta.widths.len() {
        return None;
    }
    let mut raw = Vec::new();
    std::fs::File::open(data_path)
        .ok()?
        .read_to_end(&mut raw)
        .ok()?;
    let total: usize = meta.widths.iter().map(|&w| w as usize).sum();
    if raw.len() != total * 8 {
        return None;
    }
    let mut records = Vec::with_capacity(meta.specs.len());
    let mut off = 0usize;
    for (spec, &w) in meta.specs.into_iter().zip(meta.widths.iter()) {
        let w = w as usize;
        let mut vector = Vec::with_capacity(w);
        for k in 0..w {
            let b: [u8; 8] = raw[(off + k) * 8..(off + k + 1) * 8]
                .try_into()
                .expect("slice is 8 bytes");
            vector.push(f64::from_le_bytes(b));
        }
        off += w;
        records.push(Record { spec, vector });
    }
    Some(records)
}

/// Stores a cache entry (best effort: IO errors are reported, not fatal).
///
/// # Errors
///
/// Returns an IO error string when the cache directory is not writable.
pub fn store(name: &str, records: &[Record]) -> Result<(), String> {
    let dir = cache_dir();
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let (meta_path, data_path) = paths(name);
    let meta = Meta {
        version: CACHE_VERSION,
        specs: records.iter().map(|r| r.spec).collect(),
        widths: records.iter().map(|r| r.vector.len() as u32).collect(),
    };
    std::fs::write(&meta_path, meta.to_json().dump()).map_err(|e| e.to_string())?;
    let mut f = std::fs::File::create(&data_path).map_err(|e| e.to_string())?;
    let mut buf = Vec::with_capacity(records.iter().map(|r| r.vector.len() * 8).sum());
    for r in records {
        for v in &r.vector {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    f.write_all(&buf).map_err(|e| e.to_string())?;
    Ok(())
}

/// Loads a cache entry or computes and stores it.
pub fn load_or_compute(name: &str, compute: impl FnOnce() -> Vec<Record>) -> Vec<Record> {
    if let Some(records) = load(name) {
        return records;
    }
    let records = compute();
    if let Err(e) = store(name, &records) {
        eprintln!("warning: could not write cache `{name}`: {e}");
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| Record {
                spec: CaptureSpec::baseline(i as u64),
                vector: (0..3 + i).map(|k| k as f64 * 0.5).collect(),
            })
            .collect()
    }

    #[test]
    fn round_trip_preserves_records() {
        let name = "test_round_trip";
        let rs = records(4);
        store(name, &rs).unwrap();
        let back = load(name).unwrap();
        assert_eq!(back, rs);
        // Cleanup so repeated test runs stay hermetic.
        let (m, d) = paths(name);
        let _ = std::fs::remove_file(m);
        let _ = std::fs::remove_file(d);
    }

    #[test]
    fn missing_entry_is_none() {
        assert!(load("definitely_not_cached").is_none());
    }

    #[test]
    fn load_or_compute_computes_once_then_loads() {
        let name = "test_loc";
        let (m, d) = paths(name);
        let _ = std::fs::remove_file(&m);
        let _ = std::fs::remove_file(&d);
        let mut calls = 0;
        let a = load_or_compute(name, || {
            calls += 1;
            records(2)
        });
        assert_eq!(calls, 1);
        let b = load_or_compute(name, || {
            calls += 1;
            records(2)
        });
        assert_eq!(calls, 1, "second call must hit the cache");
        assert_eq!(a, b);
        let _ = std::fs::remove_file(m);
        let _ = std::fs::remove_file(d);
    }

    #[test]
    fn corrupt_data_is_rejected() {
        let name = "test_corrupt";
        store(name, &records(2)).unwrap();
        let (_, d) = paths(name);
        std::fs::write(&d, b"short").unwrap();
        assert!(load(name).is_none());
        let (m, _) = paths(name);
        let _ = std::fs::remove_file(m);
        let _ = std::fs::remove_file(d);
    }
}
