//! Table II — dataset summary: the builders must reproduce the paper's
//! sample counts exactly.

use crate::context::Context;
use crate::report::ExperimentResult;
use ht_datagen::datasets;

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when any count deviates from Table II.
pub fn run(_ctx: &Context) -> Result<ExperimentResult, String> {
    let mut res = ExperimentResult::new(
        "table2",
        "Table II: dataset summary (sample counts)",
        "builder counts equal the paper's arithmetic exactly",
    );
    let counts: Vec<(&str, usize, usize)> = vec![
        ("Dataset-1", datasets::dataset1().len(), 9072),
        ("Dataset-2 (Replay)", datasets::dataset2().len(), 1008),
        ("Dataset-3 (Temporal)", datasets::dataset3().len(), 336),
        ("Dataset-4 (Ambient)", datasets::dataset4().len(), 168),
        ("Dataset-5 (Sitting)", datasets::dataset5().len(), 84),
        ("Dataset-6 (Loudness)", datasets::dataset6().len(), 168),
        ("Dataset-7 (Nearby)", datasets::dataset7().len(), 252),
        ("Dataset-8 (Multi-user)", datasets::dataset8().0.len(), 1440),
    ];
    for (name, got, expected) in counts {
        if got != expected {
            return Err(format!(
                "{name}: built {got} samples, Table II says {expected}"
            ));
        }
        res.push_row(
            name,
            expected.to_string(),
            got.to_string(),
            Some(got as f64),
        );
    }
    res.note("Counts are built at full scale regardless of HT_SCALE.");
    Ok(res)
}
