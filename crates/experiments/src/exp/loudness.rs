//! §IV-B12 — speech loudness: the 70 dB-trained model tested at 60 dB and
//! 80 dB; louder speech helps.

use crate::context::Context;
use crate::exp::{default_model, evaluate};
use crate::report::{pct, ExperimentResult};
use headtalk::facing::FacingDefinition;

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when 60 dB outperforms 80 dB by a clear margin.
pub fn run(ctx: &Context) -> Result<ExperimentResult, String> {
    let det = default_model(ctx)?;
    let def = FacingDefinition::Definition4;
    let records = ctx.dataset6();
    let mut res = ExperimentResult::new(
        "loudness",
        "§IV-B12: impact of speech loudness (trained at 70 dB)",
        "80 dB speech is classified at least as well as 60 dB (stronger signal, clearer facing cues)",
    );
    let mut accs = Vec::new();
    for (spl, paper_acc) in [(60.0, "93.33%"), (80.0, "95.83%")] {
        let c = evaluate(&det, &records, def, |s| s.loudness_spl == spl);
        if c.total() == 0 {
            return Err(format!("{spl} dB: empty evaluation set"));
        }
        let acc = c.accuracy();
        res.push_row(
            format!("{spl} dB SPL"),
            paper_acc,
            format!("{} ({} samples)", pct(acc), c.total()),
            Some(acc),
        );
        accs.push(acc);
    }
    if accs[0] > accs[1] + 0.03 {
        return Err(format!(
            "60 dB ({}) clearly beats 80 dB ({})",
            pct(accs[0]),
            pct(accs[1])
        ));
    }
    Ok(res)
}
