//! Fig. 3 — spectral power of "Computer" spoken live vs. replayed through a
//! Sony SRS-X5-class speaker and a Galaxy-S21-class phone.
//!
//! The paper's observation: live speech concentrates its magnitude in
//! 200 Hz–4 kHz with an exponential decay around 4 kHz but retains
//! high-frequency detail above 4 kHz; replays have less HF content.

use crate::context::Context;
use crate::report::ExperimentResult;
use ht_dsp::rng::SeedableRng;
use ht_dsp::spectrum::Spectrum;
use ht_speech::replay::SpeakerModel;
use ht_speech::utterance::WakeWord;
use ht_speech::voice::VoiceProfile;

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when the HF ordering (live > Sony > phone) is violated.
pub fn run(_ctx: &Context) -> Result<ExperimentResult, String> {
    let fs = ht_acoustics::SAMPLE_RATE;
    let mut rng = ht_dsp::rng::StdRng::seed_from_u64(0xF163);
    let live = WakeWord::Computer.synthesize(&VoiceProfile::adult_male(), &mut rng, fs);
    let sony = SpeakerModel::SonySrsX5.play(&live, &mut rng, fs);
    let phone = SpeakerModel::GalaxyS21.play(&live, &mut rng, fs);

    let hf_ratio = |x: &[f64]| -> Result<f64, String> {
        let s = Spectrum::of(x, fs).map_err(|e| e.to_string())?;
        Ok(s.band_energy(4_000.0, 12_000.0) / s.band_energy(200.0, 4_000.0))
    };
    let core_fraction = |x: &[f64]| -> Result<f64, String> {
        let s = Spectrum::of(x, fs).map_err(|e| e.to_string())?;
        Ok(s.band_energy(200.0, 4_000.0) / s.band_energy(50.0, 12_000.0))
    };

    let mut res = ExperimentResult::new(
        "fig3",
        "Fig. 3: live vs replayed spectra of \"Computer\"",
        ">4 kHz energy: live human > Sony speaker > phone; speech core (200 Hz–4 kHz) dominates all three",
    );
    let rows = [
        ("Live human", &live, "rich responses above 4 kHz"),
        (
            "Sony SRS-X5 replay",
            &sony,
            "fewer high-frequency responses",
        ),
        (
            "Galaxy S21 replay",
            &phone,
            "fewest high-frequency responses",
        ),
    ];
    let mut hfs = Vec::new();
    for (label, audio, paper) in rows {
        let hf = hf_ratio(audio)?;
        let core = core_fraction(audio)?;
        res.push_row(
            label,
            paper,
            format!(">4 kHz / core = {:.4}; core fraction = {:.2}", hf, core),
            Some(hf),
        );
        if core < 0.5 {
            return Err(format!(
                "{label}: speech core does not dominate ({core:.2})"
            ));
        }
        hfs.push(hf);
    }
    if !(hfs[0] > hfs[1] && hfs[1] > hfs[2]) {
        return Err(format!(
            "HF ordering violated: live {:.4}, sony {:.4}, phone {:.4}",
            hfs[0], hfs[1], hfs[2]
        ));
    }
    res.note("Dry (no-room) waveforms; amplitudes peak-normalized to ±1 as in the paper.");
    Ok(res)
}
