//! Fig. 16 / §IV-B14 — cross-user: leave-one-user-out over the 10-person
//! DoV-style panel with ADASYN up-sampling of the minority (facing) class.
//! The paper reports 88.66 % mean accuracy (F1 85.09 %) and picks ADASYN
//! over SMOTE.

use crate::context::Context;
use crate::report::{pct, ExperimentResult};
use headtalk::orientation::{ModelKind, OrientationDetector};
use ht_ml::crossval::{evaluate_folds, leave_one_group_out};
use ht_ml::metrics::Confusion;
use ht_ml::sampling::{adasyn, smote};
use ht_ml::{Classifier, Dataset};

/// The DoV facing definition used here: 0° and ±45° facing, the rest
/// backward (§IV-B14 — the DoV grid has no ±15°/±30°).
fn dov_label(angle_deg: f64) -> usize {
    usize::from(angle_deg.abs() <= 46.0)
}

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when the leave-one-user-out mean collapses below 70 %.
pub fn run(ctx: &Context) -> Result<ExperimentResult, String> {
    let (records, pids) = ctx.dataset8();
    let feats: Vec<Vec<f64>> = records.iter().map(|r| r.vector.clone()).collect();
    let labels: Vec<usize> = records
        .iter()
        .map(|r| dov_label(r.spec.angle_deg))
        .collect();
    let ds = Dataset::from_parts(feats, labels).map_err(|e| e.to_string())?;

    let mut res = ExperimentResult::new(
        "fig16",
        "Fig. 16 / §IV-B14: cross-user accuracy (leave-one-user-out, ADASYN)",
        "every held-out user is classified well above chance; mean accuracy near the paper's 88.66%; ADASYN ≥ SMOTE",
    );

    let run_louo = |upsample: &str| -> Result<(Vec<f64>, Vec<f64>), String> {
        let folds = leave_one_group_out(&ds, &pids);
        // Folds evaluate in parallel; each gets its own RNG stream forked
        // from (0xF1616, fold index), so the report is byte-identical for
        // any thread count.
        let per_fold = evaluate_folds(&ds, &folds, 0xF1616, |_, train, test, rng| {
            let train = match upsample {
                "adasyn" => adasyn(train, 5, rng).map_err(|e| e.to_string())?,
                "smote" => smote(train, 5, rng).map_err(|e| e.to_string())?,
                _ => train.clone(),
            };
            let det =
                OrientationDetector::fit(&train, ModelKind::Svm, 7).map_err(|e| e.to_string())?;
            let preds = det.predict_batch(test.features());
            let c = Confusion::from_predictions(test.labels(), &preds);
            Ok::<(f64, f64), String>((c.accuracy(), c.f1()))
        });
        let mut accs = Vec::new();
        let mut f1s = Vec::new();
        for r in per_fold {
            let (acc, f1): (f64, f64) = r?;
            accs.push(acc);
            f1s.push(f1);
        }
        Ok((accs, f1s))
    };

    let (adasyn_accs, adasyn_f1s) = run_louo("adasyn")?;
    for (p, acc) in adasyn_accs.iter().enumerate() {
        res.push_row(format!("participant {}", p + 1), "", pct(*acc), Some(*acc));
    }
    let mean_acc = ht_dsp::stats::mean(&adasyn_accs);
    let mean_f1 = ht_dsp::stats::mean(&adasyn_f1s);
    res.push_row(
        "mean (ADASYN)",
        "88.66% accuracy, 85.09% F1",
        format!("{} accuracy, {} F1", pct(mean_acc), pct(mean_f1)),
        Some(mean_acc),
    );

    let (smote_accs, _) = run_louo("smote")?;
    let smote_mean = ht_dsp::stats::mean(&smote_accs);
    res.push_row(
        "mean (SMOTE, comparison)",
        "inferior to ADASYN",
        pct(smote_mean),
        Some(smote_mean),
    );

    if mean_acc < 0.70 {
        return Err(format!("cross-user mean collapsed: {}", pct(mean_acc)));
    }
    res.note("Facing = {0°, ±45°}; backward = {±90°, ±135°, 180°} (the DoV grid, §IV-B14).");
    res.note("Minority (facing) class up-sampled to balance before each fold's training.");
    Ok(res)
}
