//! Fig. 14 — F1-score per environment: the quiet, absorbent lab beats the
//! noisier, more reverberant home, but the home stays above ~94 %.

use crate::context::Context;
use crate::exp::{main_grid, mean_std_pct};
use crate::report::ExperimentResult;
use ht_datagen::placements::RoomKind;

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when the home outperforms the lab.
pub fn run(ctx: &Context) -> Result<ExperimentResult, String> {
    let cells = main_grid(ctx)?;
    let paper = [(RoomKind::Lab, "98.08%"), (RoomKind::Home, "94.39%")];
    let mut res = ExperimentResult::new(
        "fig14",
        "Fig. 14: F1-score for lab vs home",
        "lab > home (home has 10 dB more ambient noise and harder surfaces), home still usable",
    );
    let mut means = Vec::new();
    for (room, paper_f1) in paper {
        let vals: Vec<f64> = cells
            .iter()
            .filter(|c| c.room == room)
            .map(|c| c.f1)
            .collect();
        let m = ht_dsp::stats::mean(&vals);
        res.push_row(
            room.name(),
            format!("mean F1 {paper_f1}"),
            format!("{} over {} cells", mean_std_pct(&vals), vals.len()),
            Some(m),
        );
        means.push(m);
    }
    if means[1] > means[0] + 0.03 {
        return Err(format!(
            "home ({:.3}) beats lab ({:.3}) by more than the documented tolerance",
            means[1], means[0]
        ));
    }
    if means[1] > means[0] {
        res.note(format!(
            "KNOWN SUBSTITUTION LIMIT: the simulated home scored {} above the lab. The shoebox home's hard walls *strengthen* the early-reflection orientation cues, while the paper's real home was harder due to furniture clutter and diverse noise that a shoebox model cannot fully capture (see DESIGN.md). Both rooms remain well above 94% as in the paper.",
            crate::report::pct(means[1] - means[0])
        ));
    }
    res.note("18 F1 values per room: 2 sessions × 3 wake words × 3 devices.");
    Ok(res)
}
