//! §IV-B7 — device placement: train at location A, test at B (coffee
//! table) and C (work table); accuracy stays above ~90 %.

use crate::context::Context;
use crate::exp::{default_model, evaluate};
use crate::report::{pct, ExperimentResult};
use headtalk::facing::FacingDefinition;
use ht_datagen::placements::Placement;

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when either placement collapses below 75 %.
pub fn run(ctx: &Context) -> Result<ExperimentResult, String> {
    let det = default_model(ctx)?;
    let def = FacingDefinition::Definition4;
    let paper = [(Placement::LabB, "97.50%"), (Placement::LabC, "91.25%")];
    let mut res = ExperimentResult::new(
        "placement",
        "§IV-B7: impact of device placement (trained at A, tested at B/C)",
        "accuracy stays above ~90% when the device moves within the room",
    );
    for (placement, paper_acc) in paper {
        let records = ctx.placement(placement);
        let c = evaluate(&det, &records, def, |_| true);
        if c.total() == 0 {
            return Err(format!("{placement:?}: empty evaluation set"));
        }
        let acc = c.accuracy();
        res.push_row(
            format!("{placement:?}"),
            paper_acc,
            format!("{} ({} samples)", pct(acc), c.total()),
            Some(acc),
        );
        if acc < 0.55 {
            return Err(format!("{placement:?} fell to chance: {}", pct(acc)));
        }
        if acc < 0.85 {
            res.note(format!(
                "KNOWN SUBSTITUTION LIMIT at {placement:?}: measured {} vs the paper's 90%+. The simulated reverberation pattern varies more sharply with device placement than a real furnished room (no diffuse furniture field to smooth the geometry change), so a model trained only at location A transfers less well.",
                pct(acc)
            ));
        }
    }
    res.note("Model: Definition-4 SVM trained on location A (both sessions, D2/lab/\"Computer\").");
    Ok(res)
}
