//! §IV-A1 — distinguishing human vs. mechanical speakers:
//!
//! 1. train "wav2vec2-mini" on the ASVspoof-sim corpus (acc ≈ 98.5 %,
//!    EER ≈ 3–4 % in the paper),
//! 2. test it unadapted on the paper's own 2016-sample live/replay set —
//!    a domain gap appears (paper: 84.87 %, EER 16.50 %),
//! 3. incrementally retrain on 20 % of the own data for 10 epochs — the gap
//!    closes (paper: 98.68 %, EER 2.58 %).

use crate::cache::Record;
use crate::context::Context;
use crate::report::{pct, ExperimentResult};
use headtalk::liveness::LivenessDetector;
use ht_dsp::rng::SeedableRng;
use ht_dsp::rng::SliceRandom;
use ht_ml::metrics::{accuracy, equal_error_rate};
use ht_ml::{Classifier, Dataset};

fn to_dataset(records: &[Record]) -> Result<Dataset, String> {
    let feats: Vec<Vec<f64>> = records.iter().map(|r| r.vector.clone()).collect();
    let labels: Vec<usize> = records
        .iter()
        .map(|r| usize::from(r.spec.source.is_live()))
        .collect();
    Dataset::from_parts(feats, labels).map_err(|e| e.to_string())
}

fn eval(det: &LivenessDetector, ds: &Dataset) -> (f64, f64) {
    let preds = det.predict_batch(ds.features());
    let scores: Vec<f64> = ds
        .features()
        .iter()
        .map(|f| det.decision_score(f))
        .collect();
    (
        accuracy(ds.labels(), &preds),
        equal_error_rate(ds.labels(), &scores),
    )
}

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when pre-training fails to learn or adaptation fails
/// to improve on the unadapted baseline.
pub fn run(ctx: &Context) -> Result<ExperimentResult, String> {
    let mut res = ExperimentResult::new(
        "liveness",
        "§IV-A1: human vs mechanical speaker (liveness detection)",
        "near-perfect in-domain accuracy; a clear generalization gap on the own data; incremental retraining closes the gap (EER back to a few percent)",
    );

    // --- Stage 1: ASVspoof-sim pre-training -------------------------------
    let asv = ctx.liveness_asvspoof();
    let asv_ds = to_dataset(&asv)?;
    let mut rng = ht_dsp::rng::StdRng::seed_from_u64(0x11FE);
    let mut idx: Vec<usize> = (0..asv_ds.len()).collect();
    idx.shuffle(&mut rng);
    let n = idx.len();
    let (tr_end, val_end) = (n * 6 / 10, n * 8 / 10);
    let in_split = |i: usize, lo: usize, hi: usize| idx[lo..hi].contains(&i);
    let train = asv_ds.filter_indices(|i| in_split(i, 0, tr_end));
    let val = asv_ds.filter_indices(|i| in_split(i, tr_end, val_end));
    let test = asv_ds.filter_indices(|i| in_split(i, val_end, n));

    // The paper fine-tunes a *pretrained* wav2vec2 for 20 epochs; our
    // wav2vec2-mini trains from scratch, so it gets a longer schedule.
    let mut det = LivenessDetector::fit(&train, 60, 0x11FE).map_err(|e| e.to_string())?;
    let (val_acc, val_eer) = eval(&det, &val);
    let (test_acc, test_eer) = eval(&det, &test);
    res.push_row(
        "ASVspoof-sim validation",
        "98.56% (EER 3.36%)",
        format!("{} (EER {})", pct(val_acc), pct(val_eer)),
        Some(val_acc),
    );
    res.push_row(
        "ASVspoof-sim test",
        "98.52% (EER 3.90%)",
        format!("{} (EER {})", pct(test_acc), pct(test_eer)),
        Some(test_acc),
    );
    if test_acc < 0.85 {
        return Err(format!("pre-training failed: {}", pct(test_acc)));
    }

    // --- Stage 2: unadapted transfer to the own data ----------------------
    let own = ctx.liveness_own();
    let own_ds = to_dataset(&own)?;
    let (own_acc, own_eer) = eval(&det, &own_ds);
    res.push_row(
        "own data, unadapted",
        "84.87% (EER 16.50%)",
        format!(
            "{} (EER {}) over {} samples",
            pct(own_acc),
            pct(own_eer),
            own_ds.len()
        ),
        Some(own_acc),
    );

    // --- Stage 3: incremental retraining (20/20/60 split, 10 epochs) ------
    let mut idx2: Vec<usize> = (0..own_ds.len()).collect();
    idx2.shuffle(&mut rng);
    let n2 = idx2.len();
    let (a, b) = (n2 * 2 / 10, n2 * 4 / 10);
    let own_train = own_ds.filter_indices(|i| idx2[..a].contains(&i));
    let own_val = own_ds.filter_indices(|i| idx2[a..b].contains(&i));
    let own_test = own_ds.filter_indices(|i| idx2[b..].contains(&i));
    det.adapt(&own_train, 10).map_err(|e| e.to_string())?;
    let (aval_acc, aval_eer) = eval(&det, &own_val);
    let (atest_acc, atest_eer) = eval(&det, &own_test);
    res.push_row(
        "own data, adapted (validation)",
        "98.61% (EER 1.76%)",
        format!("{} (EER {})", pct(aval_acc), pct(aval_eer)),
        Some(aval_acc),
    );
    res.push_row(
        "own data, adapted (test)",
        "98.68% (EER 2.58%)",
        format!("{} (EER {})", pct(atest_acc), pct(atest_eer)),
        Some(atest_acc),
    );

    if atest_acc + 0.01 < own_acc {
        return Err(format!(
            "adaptation hurt: {} -> {}",
            pct(own_acc),
            pct(atest_acc)
        ));
    }
    res.note("Pre-training corpus is deliberately domain-shifted (home acoustics, no Sony-class replay device) to mirror the ASVspoof-to-own-data gap.");
    res.note("Adaptation: 20% of the own data, 10 epochs, exactly the §IV-A1 protocol.");
    Ok(res)
}
