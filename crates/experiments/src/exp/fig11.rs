//! Fig. 11 — impact of the training-set size: N samples per class,
//! N = 5…100 step 5, 10 random repetitions each; mean F1 should pass 92 %
//! by N ≈ 20 and keep rising.

use crate::context::Context;
use crate::exp::is_default_setting;
use crate::report::{pct, ExperimentResult};
use headtalk::facing::FacingDefinition;
use headtalk::orientation::{ModelKind, OrientationDetector};
use ht_dsp::rng::{SeedableRng, StdRng};
use ht_ml::metrics::Confusion;
use ht_ml::{Classifier, Dataset};

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when F1 does not reach 90 % by N = 20 or the curve is
/// not broadly increasing.
pub fn run(ctx: &Context) -> Result<ExperimentResult, String> {
    let records = ctx.dataset1();
    let def = FacingDefinition::Definition4;
    let mut feats = Vec::new();
    let mut labels = Vec::new();
    for r in records.iter().filter(|r| is_default_setting(&r.spec)) {
        if let Some(l) = def.label(r.spec.angle_deg) {
            feats.push(r.vector.clone());
            labels.push(l);
        }
    }
    let full = Dataset::from_parts(feats, labels).map_err(|e| e.to_string())?;

    let mut res = ExperimentResult::new(
        "fig11",
        "Fig. 11: impact of training-set size on F1-score",
        "F1 rises with N; with only 20 samples per class the mean F1 exceeds ~92%",
    );
    let sizes: Vec<usize> = (1..=20).map(|k| k * 5).collect();
    let repeats = 10;
    let mut mean_f1s = Vec::new();
    let mut rng = StdRng::seed_from_u64(0xF1611);
    for &n in &sizes {
        let mut f1s = Vec::new();
        for _ in 0..repeats {
            let (train, test) = full.split_per_class(n, &mut rng);
            if test.is_empty() {
                continue;
            }
            let det =
                OrientationDetector::fit(&train, ModelKind::Svm, 7).map_err(|e| e.to_string())?;
            let preds = det.predict_batch(test.features());
            f1s.push(Confusion::from_predictions(test.labels(), &preds).f1());
        }
        let m = ht_dsp::stats::mean(&f1s);
        mean_f1s.push(m);
        // Only report a subset of rows to keep the table readable.
        if n % 10 == 0 || n == 5 {
            res.push_row(
                format!("N = {n}/class"),
                if n == 20 { "F1 > 92%" } else { "" }.to_string(),
                format!(
                    "mean F1 {} (std {:.2}%)",
                    pct(m),
                    100.0 * ht_dsp::stats::std_dev(&f1s)
                ),
                Some(m),
            );
        }
    }
    let f1_at_20 = mean_f1s[sizes.iter().position(|&n| n == 20).unwrap_or(3)];
    // The paper reaches 92% at N=20; we accept a few points of slack for the
    // simulated substrate but fail if small-sample learning truly collapses.
    if f1_at_20 < 0.85 {
        return Err(format!("F1 at N=20 only {}", pct(f1_at_20)));
    }
    let first = mean_f1s.first().copied().unwrap_or(0.0);
    let last = mean_f1s.last().copied().unwrap_or(0.0);
    if last < first {
        return Err(format!(
            "curve not increasing: N=5 {} vs N=100 {}",
            pct(first),
            pct(last)
        ));
    }
    res.note(format!(
        "{repeats} random draws per size over both sessions of the default setting (D2/lab/\"Computer\")."
    ));
    Ok(res)
}
