//! Table III — accuracy for the four facing/non-facing definitions under
//! cross-session evaluation (D2, lab, "Computer", with the extra ±75°
//! captures). Definition-4 should win.

use crate::context::Context;
use crate::exp::{evaluate, is_default_setting, train};
use crate::report::{pct, ExperimentResult};
use headtalk::facing::FacingDefinition;
use headtalk::orientation::ModelKind;

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when training fails or Definition-4 does not achieve
/// the best accuracy.
pub fn run(ctx: &Context) -> Result<ExperimentResult, String> {
    let mut records = ctx.dataset1();
    records.retain(|r| is_default_setting(&r.spec));
    records.extend(ctx.table3_extra());

    // The paper's Table III is an image; only Definition-4's numbers are
    // quoted in the prose (§IV-A2). We do not invent the others.
    let paper = [
        ("Definition-1", "(below Definition-4)"),
        ("Definition-2", "(below Definition-4)"),
        ("Definition-3", "(below Definition-4)"),
        ("Definition-4", "96.95% (FRR 3.33%, FAR 2.78%) — best"),
    ];

    let mut res = ExperimentResult::new(
        "table3",
        "Table III: accuracy per facing/non-facing definition",
        "accuracy increases from Definition-1 to Definition-4 as borderline angles are excluded; Definition-4 is best",
    );

    let mut accs = Vec::new();
    for (def, (name, paper_row)) in FacingDefinition::ALL.into_iter().zip(paper) {
        let mut dir_acc = Vec::new();
        let mut dir_frr = Vec::new();
        let mut dir_far = Vec::new();
        for (train_s, test_s) in [(0u32, 1u32), (1, 0)] {
            let det = train(&records, def, |s| s.session == train_s, ModelKind::Svm)?;
            let c = evaluate(&det, &records, def, |s| s.session == test_s);
            if c.total() == 0 {
                return Err(format!("{name}: empty test split"));
            }
            dir_acc.push(c.accuracy());
            dir_frr.push(c.frr());
            dir_far.push(c.far());
        }
        let acc = ht_dsp::stats::mean(&dir_acc);
        let frr = ht_dsp::stats::mean(&dir_frr);
        let far = ht_dsp::stats::mean(&dir_far);
        res.push_row(
            name,
            paper_row,
            format!("{} (FRR {}, FAR {})", pct(acc), pct(frr), pct(far)),
            Some(acc),
        );
        accs.push(acc);
    }
    let best = accs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    if best != 3 && (accs[3] - accs[best]).abs() > 0.01 {
        return Err(format!(
            "Definition-4 not best: accuracies {:?}",
            accs.iter().map(|a| pct(*a)).collect::<Vec<_>>()
        ));
    }
    res.note("Cross-session: train one session, test the other, averaged over both directions.");
    res.note("Includes the extra ±75° captures, as in the paper's Table III protocol.");
    Ok(res)
}
