//! §IV-A (model selection) — the four classifier families compared on
//! cross-session F1 in both rooms; the paper selects the SVM for having the
//! best average F1 across lab and home.

use crate::context::Context;
use crate::exp::{evaluate, train};
use crate::report::{pct, ExperimentResult};
use headtalk::facing::FacingDefinition;
use headtalk::orientation::ModelKind;
use ht_acoustics::array::Device;
use ht_datagen::placements::RoomKind;
use ht_speech::WakeWord;

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when the SVM is not competitive (more than 3 points of
/// F1 behind the best model).
pub fn run(ctx: &Context) -> Result<ExperimentResult, String> {
    let records = ctx.dataset1();
    let def = FacingDefinition::Definition4;
    let mut res = ExperimentResult::new(
        "models",
        "§IV-A: classifier comparison (cross-session F1, lab + home)",
        "all four families work; the SVM has the best (or tied-best) average F1, matching the paper's model selection",
    );
    let mut mean_f1 = Vec::new();
    for kind in ModelKind::ALL {
        let mut f1s = Vec::new();
        for room in RoomKind::ALL {
            for (train_s, test_s) in [(0u32, 1u32), (1, 0)] {
                let setting = |s: &ht_datagen::CaptureSpec| {
                    s.device == Device::D2 && s.room == room && s.wake_word == WakeWord::Computer
                };
                let det = train(&records, def, |s| setting(s) && s.session == train_s, kind)?;
                let c = evaluate(&det, &records, def, |s| setting(s) && s.session == test_s);
                f1s.push(c.f1());
            }
        }
        let m = ht_dsp::stats::mean(&f1s);
        res.push_row(
            kind.name(),
            if kind == ModelKind::Svm {
                "best average F1 (selected)"
            } else {
                ""
            },
            format!("mean F1 {} over {} runs", pct(m), f1s.len()),
            Some(m),
        );
        mean_f1.push(m);
    }
    let best = ht_dsp::stats::max(&mean_f1);
    let svm = mean_f1[0];
    if best - svm > 0.03 {
        return Err(format!(
            "SVM ({}) trails the best model ({}) by more than 3 points",
            pct(svm),
            pct(best)
        ));
    }
    res.note("Cross-session, D2/\"Computer\", both rooms; Definition-4 labels; paper hyperparameters (RF bagging, DT max 5 splits, kNN k=3, RBF SVM).");
    Ok(res)
}
