//! One module per reproduced table/figure, plus shared evaluation helpers.

pub mod ablation;
pub mod ambient;
pub mod crossenv;
pub mod distance;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod liveness;
pub mod loudness;
pub mod models;
pub mod objects;
pub mod placement;
pub mod runtime;
pub mod sitting;
pub mod stream;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;

use crate::cache::Record;
use crate::context::Context;
use headtalk::facing::FacingDefinition;
use headtalk::orientation::{ModelKind, OrientationDetector};
use ht_acoustics::array::Device;
use ht_datagen::placements::RoomKind;
use ht_datagen::CaptureSpec;
use ht_ml::metrics::Confusion;
use ht_ml::{Classifier, Dataset};
use ht_speech::WakeWord;

/// The default evaluation setting: D2, lab, "Computer" (§IV-A: "by default,
/// the utterance 'Computer' and device D2 are used").
pub(crate) fn is_default_setting(s: &CaptureSpec) -> bool {
    s.room == RoomKind::Lab && s.device == Device::D2 && s.wake_word == WakeWord::Computer
}

/// Trains an orientation detector on the records passing `filter`, labeled
/// under `def`.
pub(crate) fn train(
    records: &[Record],
    def: FacingDefinition,
    filter: impl Fn(&CaptureSpec) -> bool,
    kind: ModelKind,
) -> Result<OrientationDetector, String> {
    let mut feats = Vec::new();
    let mut labels = Vec::new();
    for r in records.iter().filter(|r| filter(&r.spec)) {
        if let Some(l) = def.label(r.spec.angle_deg) {
            feats.push(r.vector.clone());
            labels.push(l);
        }
    }
    if feats.is_empty() {
        return Err("no training samples after filtering".into());
    }
    let ds = Dataset::from_parts(feats, labels).map_err(|e| e.to_string())?;
    OrientationDetector::fit(&ds, kind, 7).map_err(|e| e.to_string())
}

/// Evaluates a detector on records passing `filter`, labeled under `def`.
/// Returns the confusion matrix (empty when nothing matched).
pub(crate) fn evaluate(
    det: &OrientationDetector,
    records: &[Record],
    def: FacingDefinition,
    filter: impl Fn(&CaptureSpec) -> bool,
) -> Confusion {
    let mut labels = Vec::new();
    let mut preds = Vec::new();
    for r in records.iter().filter(|r| filter(&r.spec)) {
        if let Some(l) = def.label(r.spec.angle_deg) {
            labels.push(l);
            preds.push(det.predict(&r.vector));
        }
    }
    Confusion::from_predictions(&labels, &preds)
}

/// The evaluation of one (device, room, wake-word, test-session) cell of
/// the paper's 36-value sensitivity grid.
#[derive(Debug, Clone)]
#[allow(dead_code)] // test_session/accuracy are kept for debugging dumps
pub(crate) struct GridCell {
    pub device: Device,
    pub room: RoomKind,
    pub word: WakeWord,
    pub test_session: u32,
    pub accuracy: f64,
    pub f1: f64,
    /// Accuracy restricted to each distance (1, 3, 5 m).
    pub per_distance: [f64; 3],
}

/// Computes the full 36-cell grid (2 sessions × 3 devices × 2 rooms ×
/// 3 wake words) used by the distance / wake-word / device / environment
/// analyses (§IV-B2–B5). Each cell trains on the opposite session of the
/// same setting under Definition-4.
pub(crate) fn main_grid(ctx: &Context) -> Result<Vec<GridCell>, String> {
    let records = ctx.dataset1();
    let def = FacingDefinition::Definition4;
    let mut cells = Vec::with_capacity(36);
    for device in Device::ALL {
        for room in RoomKind::ALL {
            for word in WakeWord::ALL {
                for test_session in 0..2u32 {
                    let train_session = 1 - test_session;
                    let setting = |s: &CaptureSpec| {
                        s.device == device && s.room == room && s.wake_word == word
                    };
                    let det = train(
                        &records,
                        def,
                        |s| setting(s) && s.session == train_session,
                        ModelKind::Svm,
                    )?;
                    let overall = evaluate(&det, &records, def, |s| {
                        setting(s) && s.session == test_session
                    });
                    let mut per_distance = [0.0; 3];
                    for (k, d) in [1.0, 3.0, 5.0].into_iter().enumerate() {
                        let c = evaluate(&det, &records, def, |s| {
                            setting(s) && s.session == test_session && s.location.distance_m == d
                        });
                        per_distance[k] = c.accuracy();
                    }
                    cells.push(GridCell {
                        device,
                        room,
                        word,
                        test_session,
                        accuracy: overall.accuracy(),
                        f1: overall.f1(),
                        per_distance,
                    });
                }
            }
        }
    }
    Ok(cells)
}

/// Trains the paper's "Section IV-A2 model" used by the sensitivity
/// experiments: Definition-4, D2, lab, "Computer", both sessions.
pub(crate) fn default_model(ctx: &Context) -> Result<OrientationDetector, String> {
    let records = ctx.dataset1();
    train(
        &records,
        FacingDefinition::Definition4,
        is_default_setting,
        ModelKind::Svm,
    )
}

/// Mean ± std formatted like the paper ("98.38 ± 2.41 %").
pub(crate) fn mean_std_pct(values: &[f64]) -> String {
    format!(
        "{:.2} ± {:.2}%",
        100.0 * ht_dsp::stats::mean(values),
        100.0 * ht_dsp::stats::std_dev(values)
    )
}
