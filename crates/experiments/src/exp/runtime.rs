//! §IV-B15 — run-time performance: wall-clock latency of liveness
//! detection and orientation detection on one wake-word capture.
//!
//! The paper measures 42 ms (liveness) and 136 ms (orientation) on an
//! i7-2600 PC and 527 ms (orientation) on the ReSpeaker Core's Cortex-A7.
//! Absolute numbers depend on the machine; the shape check is that both
//! stages finish well within a VA's wake-word budget (< 1 s).

use crate::context::Context;
use crate::report::ExperimentResult;
use headtalk::liveness::prepare_input;
use headtalk::{HeadTalk, PipelineConfig};
use ht_datagen::CaptureSpec;
use std::time::Instant;

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when feature extraction exceeds one second per capture.
pub fn run(_ctx: &Context) -> Result<ExperimentResult, String> {
    let cfg = PipelineConfig::default();
    let spec = CaptureSpec::baseline(0xB15);
    let channels = spec.render().map_err(|e| e.to_string())?;
    let pre = headtalk::preprocess::Preprocessor::new(&cfg).map_err(|e| e.to_string())?;

    // Warm up, then time the two stages separately, as the paper does.
    let reps = 10;
    let denoised = pre.denoise_channels(&channels).map_err(|e| e.to_string())?;

    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = prepare_input(&denoised[0], cfg.liveness_input_len).map_err(|e| e.to_string())?;
    }
    let liveness_ms = t0.elapsed().as_secs_f64() * 1000.0 / reps as f64;

    let t1 = Instant::now();
    for _ in 0..reps {
        let _ = HeadTalk::orientation_features(&cfg, &channels).map_err(|e| e.to_string())?;
    }
    let orientation_ms = t1.elapsed().as_secs_f64() * 1000.0 / reps as f64;

    let mut res = ExperimentResult::new(
        "runtime",
        "§IV-B15: run-time performance per wake-word capture",
        "both stages complete well within a voice assistant's response budget (< 1 s)",
    );
    res.push_row(
        "liveness input preparation",
        "42 ms (i7-2600 PC, model inference included)",
        format!("{liveness_ms:.1} ms"),
        Some(liveness_ms),
    );
    res.push_row(
        "orientation feature extraction",
        "136 ms (PC) / 527 ms (ReSpeaker Core v2)",
        format!("{orientation_ms:.1} ms"),
        Some(orientation_ms),
    );
    if orientation_ms > 1000.0 {
        return Err(format!(
            "orientation stage too slow: {orientation_ms:.0} ms"
        ));
    }
    res.note("Measured on this machine; the paper's absolute numbers are hardware-specific. Criterion benches in crates/bench give calibrated measurements.");
    Ok(res)
}
