//! §IV-B15 — run-time performance: wall-clock latency of liveness
//! detection and orientation detection on one wake-word capture.
//!
//! The paper measures 42 ms (liveness) and 136 ms (orientation) on an
//! i7-2600 PC and 527 ms (orientation) on the ReSpeaker Core's Cortex-A7.
//! Absolute numbers depend on the machine; the shape check is that both
//! stages finish well within a VA's wake-word budget (< 1 s).
//!
//! Timings come from the pipeline's own `ht-obs` stage spans
//! (`wake.liveness_prepare`, `wake.denoise`, `wake.feature_extract`) rather
//! than ad-hoc stopwatches, so this experiment measures exactly what
//! `HT_OBS=summary` reports in production and exercises the observability
//! path end to end.

use crate::context::Context;
use crate::report::ExperimentResult;
use headtalk::liveness::prepare_input;
use headtalk::{HeadTalk, PipelineConfig};
use ht_datagen::CaptureSpec;

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when feature extraction exceeds one second per capture.
pub fn run(_ctx: &Context) -> Result<ExperimentResult, String> {
    let cfg = PipelineConfig::default();
    let spec = CaptureSpec::baseline(0xB15);
    let channels = spec.render().map_err(|e| e.to_string())?;
    let pre = headtalk::preprocess::Preprocessor::new(&cfg).map_err(|e| e.to_string())?;
    let denoised = pre.denoise_channels(&channels).map_err(|e| e.to_string())?;

    // Record the reps through the pipeline's stage spans: enable
    // observability (restored afterwards so an `HT_OBS=off` run stays off
    // for other experiments), clear the registry so warm-up and prior
    // experiments don't pollute the histograms, then read the medians back.
    let prev = ht_obs::mode();
    ht_obs::set_mode(ht_obs::Mode::Summary);
    ht_obs::registry().reset();
    let reps = 10;
    for _ in 0..reps {
        let _ = prepare_input(&denoised[0], cfg.liveness_input_len).map_err(|e| e.to_string())?;
        let _ = HeadTalk::orientation_features(&cfg, &channels).map_err(|e| e.to_string())?;
    }
    let snap = ht_obs::registry().snapshot();
    ht_obs::set_mode(prev);

    let span_ms = |name: &str| -> Result<f64, String> {
        let h = snap
            .span(name)
            .ok_or_else(|| format!("span {name:?} not recorded"))?;
        if h.count != reps {
            return Err(format!(
                "span {name:?}: {} records, expected {reps}",
                h.count
            ));
        }
        Ok(h.mean_ns / 1e6)
    };
    let liveness_ms = span_ms("wake.liveness_prepare")?;
    let denoise_ms = span_ms("wake.denoise")?;
    let extract_ms = span_ms("wake.feature_extract")?;
    // The paper's "orientation" stage spans denoising through features.
    let orientation_ms = denoise_ms + extract_ms;

    let mut res = ExperimentResult::new(
        "runtime",
        "§IV-B15: run-time performance per wake-word capture",
        "both stages complete well within a voice assistant's response budget (< 1 s)",
    );
    res.push_row(
        "liveness input preparation",
        "42 ms (i7-2600 PC, model inference included)",
        format!("{liveness_ms:.1} ms"),
        Some(liveness_ms),
    );
    res.push_row(
        "orientation feature extraction",
        "136 ms (PC) / 527 ms (ReSpeaker Core v2)",
        format!("{orientation_ms:.1} ms"),
        Some(orientation_ms),
    );
    res.push_row(
        "  of which denoising",
        "",
        format!("{denoise_ms:.1} ms"),
        Some(denoise_ms),
    );
    res.push_row(
        "  of which SRP/GCC features",
        "",
        format!("{extract_ms:.1} ms"),
        Some(extract_ms),
    );
    if orientation_ms > 1000.0 {
        return Err(format!(
            "orientation stage too slow: {orientation_ms:.0} ms"
        ));
    }
    res.note(
        "Stage means read from the ht-obs span histograms over 10 reps — the same \
         breakdown HT_OBS=summary prints. Absolute numbers are hardware-specific; \
         benches in crates/bench give calibrated measurements.",
    );
    Ok(res)
}
