//! Fig. 5 — the same utterance spoken at 0° vs 180°: the forward capture
//! has a higher received magnitude, and its high/low frequency balance is
//! less distorted (Insights 1 and 2).

use crate::context::Context;
use crate::report::ExperimentResult;
use ht_datagen::CaptureSpec;
use ht_dsp::spectrum::{hlbr, Spectrum};

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when forward is not louder / brighter than backward.
pub fn run(_ctx: &Context) -> Result<ExperimentResult, String> {
    let fs = ht_acoustics::SAMPLE_RATE;
    let forward = CaptureSpec::baseline(0xF150);
    let backward = CaptureSpec {
        angle_deg: 180.0,
        ..forward
    };
    let fch = forward.render().map_err(|e| e.to_string())?;
    let bch = backward.render().map_err(|e| e.to_string())?;
    let f_rms = ht_dsp::signal::rms(&fch[0]);
    let b_rms = ht_dsp::signal::rms(&bch[0]);
    let f_hlbr = hlbr(&Spectrum::of(&fch[0], fs).map_err(|e| e.to_string())?);
    let b_hlbr = hlbr(&Spectrum::of(&bch[0], fs).map_err(|e| e.to_string())?);

    let mut res = ExperimentResult::new(
        "fig5",
        "Fig. 5: utterance at 0° vs 180° (same loudness)",
        "forward capture is louder and keeps a higher high/low band ratio",
    );
    res.push_row(
        "received RMS, 0°",
        "higher magnitude in forward direction",
        format!("{f_rms:.5}"),
        Some(f_rms),
    );
    res.push_row(
        "received RMS, 180°",
        "lower magnitude",
        format!("{b_rms:.5}"),
        Some(b_rms),
    );
    res.push_row(
        "HLBR, 0°",
        "less high/low distortion when facing",
        format!("{f_hlbr:.3}"),
        Some(f_hlbr),
    );
    res.push_row(
        "HLBR, 180°",
        "more distortion when not facing",
        format!("{b_hlbr:.3}"),
        Some(b_hlbr),
    );
    if f_rms <= b_rms {
        return Err(format!(
            "forward ({f_rms}) not louder than backward ({b_rms})"
        ));
    }
    if f_hlbr <= b_hlbr {
        return Err(format!(
            "forward HLBR ({f_hlbr}) not above backward ({b_hlbr})"
        ));
    }
    res.note("Rendered at M3 (3 m, mid line) on D2 in the lab at 70 dB SPL.");
    Ok(res)
}
