//! §IV-B8 — cross-environment: training in one room and testing in the
//! other degrades sharply; mixing one session of both rooms recovers to
//! near-normal accuracy.

use crate::context::Context;
use crate::exp::{evaluate, train};
use crate::report::{pct, ExperimentResult};
use headtalk::facing::FacingDefinition;
use headtalk::orientation::ModelKind;
use ht_acoustics::array::Device;
use ht_datagen::placements::RoomKind;
use ht_speech::WakeWord;

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when cross-room transfer does not degrade relative to
/// the mixed-session protocol.
pub fn run(ctx: &Context) -> Result<ExperimentResult, String> {
    let records = ctx.dataset1();
    let def = FacingDefinition::Definition4;
    let d2computer =
        |s: &ht_datagen::CaptureSpec| s.device == Device::D2 && s.wake_word == WakeWord::Computer;

    let mut res = ExperimentResult::new(
        "crossenv",
        "§IV-B8: cross-environment performance",
        "train-one-room/test-the-other drops well below normal; training on one session of both rooms and testing on the other recovers to ≈95%+",
    );

    // Pure cross-room transfer, averaged over both directions.
    let mut transfer = Vec::new();
    for (train_room, test_room) in [
        (RoomKind::Home, RoomKind::Lab),
        (RoomKind::Lab, RoomKind::Home),
    ] {
        let det = train(
            &records,
            def,
            |s| d2computer(s) && s.room == train_room,
            ModelKind::Svm,
        )?;
        let c = evaluate(&det, &records, def, |s| {
            d2computer(s) && s.room == test_room
        });
        transfer.push(c.accuracy());
    }
    let transfer_acc = ht_dsp::stats::mean(&transfer);
    res.push_row(
        "train one room → test the other",
        "77.73% (78.20% F1)",
        pct(transfer_acc),
        Some(transfer_acc),
    );

    // Mixed-session protocol, per wake word.
    let paper_mixed = [
        (WakeWord::HeyAssistant, "96.90%"),
        (WakeWord::Computer, "95.62%"),
        (WakeWord::Amazon, "95.02%"),
    ];
    let mut mixed_accs = Vec::new();
    for (word, paper_acc) in paper_mixed {
        let mut accs = Vec::new();
        for (train_s, test_s) in [(0u32, 1u32), (1, 0)] {
            let det = train(
                &records,
                def,
                |s| s.device == Device::D2 && s.wake_word == word && s.session == train_s,
                ModelKind::Svm,
            )?;
            let c = evaluate(&det, &records, def, |s| {
                s.device == Device::D2 && s.wake_word == word && s.session == test_s
            });
            accs.push(c.accuracy());
        }
        let acc = ht_dsp::stats::mean(&accs);
        res.push_row(
            format!("mixed rooms, \"{}\"", word.name()),
            paper_acc,
            pct(acc),
            Some(acc),
        );
        mixed_accs.push(acc);
    }
    let mixed_mean = ht_dsp::stats::mean(&mixed_accs);
    if transfer_acc >= mixed_mean {
        return Err(format!(
            "cross-room transfer ({}) should trail the mixed protocol ({})",
            pct(transfer_acc),
            pct(mixed_mean)
        ));
    }
    res.note("Transfer uses D2/\"Computer\"; mixed protocol trains on session k of both rooms and tests on the other session.");
    Ok(res)
}
