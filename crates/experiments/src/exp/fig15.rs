//! Fig. 15 / §IV-B9 — temporal stability: the day-one model degrades on
//! week- and month-old data; folding 10–40 high-confidence samples back in
//! (incremental learning) recovers the accuracy.

use crate::cache::Record;
use crate::context::Context;
use crate::exp::default_model;
use crate::report::{pct, ExperimentResult};
use headtalk::facing::FacingDefinition;
use headtalk::orientation::{ModelKind, OrientationDetector};
use ht_ml::incremental::high_confidence_samples;
use ht_ml::{Classifier, Dataset};

fn accuracy_on(det: &OrientationDetector, records: &[Record], def: FacingDefinition) -> f64 {
    let mut labels = Vec::new();
    let mut preds = Vec::new();
    for r in records {
        if let Some(l) = def.label(r.spec.angle_deg) {
            labels.push(l);
            preds.push(det.predict(&r.vector));
        }
    }
    ht_ml::metrics::accuracy(&labels, &preds)
}

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when incremental learning fails to improve on the
/// degraded baseline.
pub fn run(ctx: &Context) -> Result<ExperimentResult, String> {
    let det0 = default_model(ctx)?;
    let def = FacingDefinition::Definition4;
    let d3 = ctx.dataset3();
    let week: Vec<Record> = d3
        .iter()
        .filter(|r| r.spec.temporal_drift < 0.2)
        .cloned()
        .collect();
    let month: Vec<Record> = d3
        .iter()
        .filter(|r| r.spec.temporal_drift >= 0.2)
        .cloned()
        .collect();

    let mut res = ExperimentResult::new(
        "fig15",
        "Fig. 15 / §IV-B9: temporal stability and incremental learning",
        "day-one model degrades on week/month-old data; adding 10–40 high-confidence samples recovers most of the loss",
    );

    // Base training set: the default setting of Dataset-1, both sessions.
    let d1 = ctx.dataset1();
    let mut base_feats = Vec::new();
    let mut base_labels = Vec::new();
    for r in d1
        .iter()
        .filter(|r| crate::exp::is_default_setting(&r.spec))
    {
        if let Some(l) = def.label(r.spec.angle_deg) {
            base_feats.push(r.vector.clone());
            base_labels.push(l);
        }
    }
    let base = Dataset::from_parts(base_feats, base_labels).map_err(|e| e.to_string())?;

    for (name, aged, paper_base) in [
        ("one week", &week, "81.25%"),
        ("one month", &month, "83.19%"),
    ] {
        let acc0 = accuracy_on(&det0, aged, def);
        res.push_row(
            format!("{name}, no adaptation"),
            paper_base,
            pct(acc0),
            Some(acc0),
        );
        // Incremental rounds: self-label the aged data with confidence
        // >= 80% and add the first N samples, as the paper sweeps 10..40.
        let mut pool = Dataset::new(base.dim());
        for r in aged {
            // Unlabeled view: dummy label, replaced by self-training.
            pool.push(r.vector.clone(), 0).map_err(|e| e.to_string())?;
        }
        let confident = high_confidence_samples(&det0, &pool, 0.8).map_err(|e| e.to_string())?;
        let mut recovered = Vec::new();
        for n_new in [10usize, 20, 30, 40] {
            let take = confident.len().min(n_new);
            let additions = confident.filter_indices(|i| i < take);
            let mut train = base.clone();
            if !additions.is_empty() {
                train.extend(&additions).map_err(|e| e.to_string())?;
            }
            let det =
                OrientationDetector::fit(&train, ModelKind::Svm, 7).map_err(|e| e.to_string())?;
            let acc = accuracy_on(&det, aged, def);
            recovered.push(acc);
            res.push_row(
                format!("{name}, +{n_new} samples"),
                match n_new {
                    10 => "≈90–92%",
                    40 => "≈95%",
                    _ => "",
                },
                pct(acc),
                Some(acc),
            );
        }
        let best = ht_dsp::stats::max(&recovered);
        if best + 0.005 < acc0 {
            return Err(format!(
                "{name}: adaptation hurt ({} -> {})",
                pct(acc0),
                pct(best)
            ));
        }
    }
    res.note("Self-labeled additions use the ≥80% confidence rule of §IV-B9; base model is the Definition-4 default-setting SVM.");
    Ok(res)
}
