//! §IV-B11 — sitting vs standing: a model trained on standing speech still
//! detects a seated speaker's orientation (≈93 %).

use crate::context::Context;
use crate::exp::{default_model, evaluate};
use crate::report::{pct, ExperimentResult};
use headtalk::facing::FacingDefinition;

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when the seated accuracy collapses below 80 %.
pub fn run(ctx: &Context) -> Result<ExperimentResult, String> {
    let det = default_model(ctx)?;
    let records = ctx.dataset5();
    let c = evaluate(&det, &records, FacingDefinition::Definition4, |_| true);
    if c.total() == 0 {
        return Err("empty evaluation set".into());
    }
    let acc = c.accuracy();
    let mut res = ExperimentResult::new(
        "sitting",
        "§IV-B11: impact of sitting vs standing",
        "training on standing data generalizes to a seated speaker (no significant impact)",
    );
    res.push_row(
        "trained standing, tested sitting",
        "93.33%",
        format!("{} ({} samples)", pct(acc), c.total()),
        Some(acc),
    );
    if acc < 0.60 {
        return Err(format!("sitting accuracy fell to chance: {}", pct(acc)));
    }
    if acc < 0.85 {
        res.note(format!(
            "KNOWN SUBSTITUTION LIMIT: measured {} vs the paper's 93.33%. Lowering the point source to 1.20 m changes the simulated floor/ceiling bounce geometry more than a real seated torso does (a human body shadows and diffuses the downward radiation; our source is an ideal point with azimuth-only directivity).",
            pct(acc)
        ));
    }
    res.note("Seated mouth height 1.20 m vs the 1.65 m standing training data.");
    Ok(res)
}
