//! Fig. 6 — GCC-PHAT between a D3 microphone pair and the weighted SRP for
//! speakers at 0°, 90° and 180°: the smaller the facing angle, the higher
//! the SRP power.

use crate::context::Context;
use crate::report::ExperimentResult;
use headtalk::PipelineConfig;
use ht_acoustics::array::Device;
use ht_datagen::CaptureSpec;
use ht_dsp::srp::srp_phat;

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when the SRP peak does not decrease with angle.
pub fn run(_ctx: &Context) -> Result<ExperimentResult, String> {
    let cfg = PipelineConfig::for_device(Device::D3);
    let mut res = ExperimentResult::new(
        "fig6",
        "Fig. 6: pairwise GCC and weighted SRP at 0°/90°/180° (device D3)",
        "SRP peak power decreases as the facing angle grows; 0° peaks at small lag",
    );
    let mut peaks = Vec::new();
    for (i, angle) in [0.0, 90.0, 180.0].into_iter().enumerate() {
        let spec = CaptureSpec {
            device: Device::D3,
            angle_deg: angle,
            seed: 0xF166 + i as u64,
            ..CaptureSpec::baseline(0)
        };
        let channels = spec.render().map_err(|e| e.to_string())?;
        let refs: Vec<&[f64]> = channels.iter().map(|c| c.as_slice()).collect();
        let analysis = srp_phat(&refs, cfg.max_lag).map_err(|e| e.to_string())?;
        let peak = ht_dsp::stats::max(&analysis.srp.values);
        let gcc01_peak = ht_dsp::stats::max(&analysis.gccs[0].values);
        let gcc01_lag = analysis.gccs[0].peak_lag();
        res.push_row(
            format!("{angle}°"),
            "higher SRP at smaller angles; 3–4 reverberation peaks",
            format!(
                "SRP peak {:.3}; GCC(Mic1,Mic2) peak {:.3} at lag {} samples; {} SRP local maxima",
                peak,
                gcc01_peak,
                gcc01_lag,
                ht_dsp::peak::local_maxima(&analysis.srp.values).len()
            ),
            Some(peak),
        );
        peaks.push(peak);
    }
    if !(peaks[0] > peaks[1] && peaks[1] > peaks[2]) {
        return Err(format!(
            "SRP ordering violated: 0° {:.3}, 90° {:.3}, 180° {:.3}",
            peaks[0], peaks[1], peaks[2]
        ));
    }
    res.note("Single captures at M3; the lag window is D3's ±10 samples (±0.2 ms).");
    Ok(res)
}
