//! Feature ablation (design-choice validation, extending §III-B3): how much
//! do the two feature families — speech reverberation (SRP/GCC/TDoA) and
//! speech directivity (HLBR + low-band chunks) — contribute individually?
//!
//! The paper motivates both (Insights 1 and 2) but only evaluates the full
//! set; this ablation confirms each family alone carries signal and the
//! combination is at least as good as either alone.

use crate::cache::Record;
use crate::context::Context;
use crate::exp::is_default_setting;
use crate::report::{pct, ExperimentResult};
use headtalk::facing::FacingDefinition;
use headtalk::orientation::{ModelKind, OrientationDetector};
use headtalk::PipelineConfig;
use ht_ml::{Classifier, Dataset};

/// Index where the directivity block starts for a 4-mic feature vector.
fn directivity_start(cfg: &PipelineConfig) -> usize {
    let pairs = 6; // C(4,2)
    let window = 2 * cfg.max_lag + 1;
    (cfg.srp_peaks + 5) + pairs * (window + 1 + 5)
}

fn slice_features(records: &[Record], range: std::ops::Range<usize>) -> Vec<Record> {
    records
        .iter()
        .map(|r| Record {
            spec: r.spec,
            vector: r.vector[range.clone()].to_vec(),
        })
        .collect()
}

fn cross_session_acc(records: &[Record]) -> Result<f64, String> {
    let def = FacingDefinition::Definition4;
    let mut accs = Vec::new();
    for (train_s, test_s) in [(0u32, 1u32), (1, 0)] {
        let mut tf = Vec::new();
        let mut tl = Vec::new();
        for r in records.iter().filter(|r| r.spec.session == train_s) {
            if let Some(l) = def.label(r.spec.angle_deg) {
                tf.push(r.vector.clone());
                tl.push(l);
            }
        }
        let ds = Dataset::from_parts(tf, tl).map_err(|e| e.to_string())?;
        let det = OrientationDetector::fit(&ds, ModelKind::Svm, 7).map_err(|e| e.to_string())?;
        let mut labels = Vec::new();
        let mut preds = Vec::new();
        for r in records.iter().filter(|r| r.spec.session == test_s) {
            if let Some(l) = def.label(r.spec.angle_deg) {
                labels.push(l);
                preds.push(det.predict(&r.vector));
            }
        }
        accs.push(ht_ml::metrics::accuracy(&labels, &preds));
    }
    Ok(ht_dsp::stats::mean(&accs))
}

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when either family alone is at chance, or the full set
/// is clearly worse than both ablations.
pub fn run(ctx: &Context) -> Result<ExperimentResult, String> {
    let cfg = PipelineConfig::default();
    let mut records = ctx.dataset1();
    records.retain(|r| is_default_setting(&r.spec));

    let split = directivity_start(&cfg);
    let width = records
        .first()
        .map(|r| r.vector.len())
        .ok_or("no records")?;

    let full = cross_session_acc(&records)?;
    let reverb_only = cross_session_acc(&slice_features(&records, 0..split))?;
    let directivity_only = cross_session_acc(&slice_features(&records, split..width))?;

    let mut res = ExperimentResult::new(
        "ablation",
        "Feature ablation: reverberation vs directivity families (extension)",
        "each family alone carries orientation signal (well above 50%); the full feature set matches or beats both",
    );
    res.push_row(
        "full feature set (§III-B3)",
        "96.95% (Table III, Definition-4)",
        pct(full),
        Some(full),
    );
    res.push_row(
        "reverberation only (SRP + GCC + TDoA + stats)",
        "(not evaluated in the paper)",
        pct(reverb_only),
        Some(reverb_only),
    );
    res.push_row(
        "directivity only (HLBR + low-band chunks)",
        "(not evaluated in the paper)",
        pct(directivity_only),
        Some(directivity_only),
    );
    if reverb_only < 0.6 || directivity_only < 0.6 {
        return Err(format!(
            "an ablated family is near chance: reverb {}, directivity {}",
            pct(reverb_only),
            pct(directivity_only)
        ));
    }
    if full + 0.02 < reverb_only.max(directivity_only) {
        return Err(format!(
            "full set ({}) clearly worse than an ablation ({} / {})",
            pct(full),
            pct(reverb_only),
            pct(directivity_only)
        ));
    }
    res.note("Cross-session protocol on the default setting; feature blocks sliced from the cached §III-B3 vectors.");
    Ok(res)
}
