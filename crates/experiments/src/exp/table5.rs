//! Table V + §V — the user study: survey tallies, recomputed takeaways and
//! SUS aggregates (see `headtalk::userstudy` for why only the analysis is
//! reproduced).

use crate::context::Context;
use crate::report::ExperimentResult;
use headtalk::userstudy;

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error if the recomputed takeaways drift from §V.
pub fn run(_ctx: &Context) -> Result<ExperimentResult, String> {
    let mut res = ExperimentResult::new(
        "table5",
        "Table V + SUS: user study (N = 20)",
        "takeaway percentages recompute exactly from the encoded tallies; SUS means clear the 68-point benchmark with HeadTalk above the mute button",
    );
    for q in userstudy::table_v() {
        let tally: Vec<String> = q
            .responses
            .iter()
            .map(|(l, c)| format!("{l} ({c})"))
            .collect();
        res.push_row(q.question, "", tally.join(", "), None);
    }
    let t = userstudy::takeaways();
    let checks = [
        (
            "owners facing the VA often",
            t.owners_face_often,
            10.0 / 15.0,
        ),
        ("rated easy to use", t.easy_to_use, 0.95),
        ("would deploy", t.would_deploy, 0.70),
        (
            "better than existing controls",
            t.better_than_existing,
            0.70,
        ),
    ];
    for (label, got, expected) in checks {
        if (got - expected).abs() > 1e-9 {
            return Err(format!("{label}: {got} != paper {expected}"));
        }
        res.push_row(
            label,
            format!("{:.2}%", expected * 100.0),
            format!("{:.2}%", got * 100.0),
            Some(got),
        );
    }
    res.push_row(
        "SUS: HeadTalk",
        "77.38 ± 6.26 (95% CI)",
        format!(
            "{:.2} ± {:.2} (paper-reported; scorer property-tested)",
            userstudy::PAPER_SUS_HEADTALK.0,
            userstudy::PAPER_SUS_HEADTALK.1
        ),
        Some(userstudy::PAPER_SUS_HEADTALK.0),
    );
    res.push_row(
        "SUS: mute button",
        "74.75 ± 8.12 (95% CI)",
        format!(
            "{:.2} ± {:.2} (paper-reported)",
            userstudy::PAPER_SUS_MUTE_BUTTON.0,
            userstudy::PAPER_SUS_MUTE_BUTTON.1
        ),
        Some(userstudy::PAPER_SUS_MUTE_BUTTON.0),
    );
    res.note("Human-subject responses cannot be simulated; the scoring pipeline (SUS rule, CI computation, tally arithmetic) is reproduced and tested instead.");
    Ok(res)
}
