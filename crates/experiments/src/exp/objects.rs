//! §IV-B13 — surrounding objects: partial blockage barely hurts, full
//! blockage is severe, raising the device 14.8 cm recovers.

use crate::context::Context;
use crate::exp::{default_model, evaluate};
use crate::report::{pct, ExperimentResult};
use headtalk::facing::FacingDefinition;
use ht_acoustics::room::Obstruction;

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when the blocked/raised ordering is violated.
pub fn run(ctx: &Context) -> Result<ExperimentResult, String> {
    let det = default_model(ctx)?;
    let def = FacingDefinition::Definition4;
    let records = ctx.dataset7();
    let mut res = ExperimentResult::new(
        "objects",
        "§IV-B13: impact of surrounding objects (Fig. 17 setups)",
        "partial ≫ full blockage; raising the device restores near-baseline accuracy",
    );
    let settings = [
        (Obstruction::Partial, "95.83%"),
        (Obstruction::Full, "70.00%"),
        (Obstruction::Raised, "95.00%"),
    ];
    let mut accs = Vec::new();
    for (obstruction, paper_acc) in settings {
        let c = evaluate(&det, &records, def, |s| s.obstruction == obstruction);
        if c.total() == 0 {
            return Err(format!("{obstruction:?}: empty evaluation set"));
        }
        let acc = c.accuracy();
        res.push_row(
            format!("{obstruction:?}"),
            paper_acc,
            format!("{} ({} samples)", pct(acc), c.total()),
            Some(acc),
        );
        accs.push(acc);
    }
    let (partial, full, raised) = (accs[0], accs[1], accs[2]);
    if full >= partial {
        return Err(format!(
            "full blockage ({}) should hurt more than partial ({})",
            pct(full),
            pct(partial)
        ));
    }
    if raised <= full {
        return Err(format!(
            "raising the device ({}) should recover from full blockage ({})",
            pct(raised),
            pct(full)
        ));
    }
    res.note("Blocked devices lose the direct path's high-band energy, making facing speech look backward (§IV-B13).");
    Ok(res)
}
