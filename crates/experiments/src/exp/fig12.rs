//! Fig. 12 — F1-score per wake word (12 values each): no significant
//! differences across the three wake words.

use crate::context::Context;
use crate::exp::{main_grid, mean_std_pct};
use crate::report::ExperimentResult;
use ht_speech::WakeWord;

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when any two wake words differ by more than 5 points of
/// mean F1.
pub fn run(ctx: &Context) -> Result<ExperimentResult, String> {
    let cells = main_grid(ctx)?;
    let paper = [
        (WakeWord::HeyAssistant, "95.92%"),
        (WakeWord::Computer, "96.40%"),
        (WakeWord::Amazon, "96.39%"),
    ];
    let mut res = ExperimentResult::new(
        "fig12",
        "Fig. 12: F1-score for different wake words",
        "no significant difference across the three wake words",
    );
    let mut means = Vec::new();
    for (word, paper_f1) in paper {
        let vals: Vec<f64> = cells
            .iter()
            .filter(|c| c.word == word)
            .map(|c| c.f1)
            .collect();
        let m = ht_dsp::stats::mean(&vals);
        res.push_row(
            word.name(),
            format!("mean F1 {paper_f1}"),
            format!("{} over {} cells", mean_std_pct(&vals), vals.len()),
            Some(m),
        );
        means.push(m);
    }
    let spread = ht_dsp::stats::max(&means) - ht_dsp::stats::min(&means);
    if spread > 0.05 {
        return Err(format!("wake-word spread too large: {spread:.3}"));
    }
    res.note("12 F1 values per word: 2 sessions × 3 devices × 2 rooms.");
    Ok(res)
}
