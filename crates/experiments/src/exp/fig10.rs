//! Fig. 10 — per-angle accuracy of the Definition-4 model, including the
//! borderline angles (±45°, ±60°, ±75°) it was never trained on.

use crate::context::Context;
use crate::exp::{is_default_setting, train};
use crate::report::{pct, ExperimentResult};
use headtalk::facing::{zone_of, FacingDefinition, FacingZone};
use headtalk::orientation::ModelKind;
use ht_ml::Classifier;

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when facing/non-facing angles fall below 85 % or the
/// borderline mean is not the worst.
pub fn run(ctx: &Context) -> Result<ExperimentResult, String> {
    let mut records = ctx.dataset1();
    records.retain(|r| is_default_setting(&r.spec));
    records.extend(ctx.table3_extra());

    let def = FacingDefinition::Definition4;
    let mut res = ExperimentResult::new(
        "fig10",
        "Fig. 10: detecting speaker orientation at different angles",
        "facing (|angle| ≤ 30°) and non-facing (|angle| ≥ 90°) accuracies above ~90%; borderline ±45°/±60°/±75° degraded (soft boundary)",
    );

    let angles = [0.0, 15.0, 30.0, 45.0, 60.0, 75.0, 90.0, 135.0, 180.0];
    let mut zone_scores: std::collections::HashMap<&'static str, Vec<f64>> =
        std::collections::HashMap::new();
    for &a in &angles {
        let mut dir_acc = Vec::new();
        for (train_s, test_s) in [(0u32, 1u32), (1, 0)] {
            let det = train(&records, def, |s| s.session == train_s, ModelKind::Svm)?;
            let mut hits = 0usize;
            let mut total = 0usize;
            for r in &records {
                if r.spec.session != test_s || (r.spec.angle_deg.abs() - a).abs() > 1.0 {
                    continue;
                }
                let truth = FacingDefinition::ground_truth(r.spec.angle_deg);
                if det.predict(&r.vector) == truth {
                    hits += 1;
                }
                total += 1;
            }
            if total > 0 {
                dir_acc.push(hits as f64 / total as f64);
            }
        }
        let acc = ht_dsp::stats::mean(&dir_acc);
        let zone = match zone_of(a) {
            FacingZone::Facing => "facing",
            FacingZone::Blind => "borderline",
            FacingZone::NonFacing => "non-facing",
        };
        zone_scores.entry(zone).or_default().push(acc);
        res.push_row(
            format!("±{a}° ({zone})"),
            match zone {
                "borderline" => "degraded (soft boundary)",
                _ => "above 90%",
            },
            pct(acc),
            Some(acc),
        );
    }

    let mean_of =
        |z: &str| ht_dsp::stats::mean(zone_scores.get(z).map(Vec::as_slice).unwrap_or(&[]));
    let facing = mean_of("facing");
    let nonfacing = mean_of("non-facing");
    let borderline = mean_of("borderline");
    if facing < 0.85 || nonfacing < 0.85 {
        return Err(format!(
            "trained zones too weak: facing {}, non-facing {}",
            pct(facing),
            pct(nonfacing)
        ));
    }
    if borderline >= facing.min(nonfacing) {
        return Err(format!(
            "borderline ({}) should be the weakest zone",
            pct(borderline)
        ));
    }
    res.note("Ground truth per angle is the Fig. 4b zone (facing = |angle| ≤ 30°).");
    Ok(res)
}
