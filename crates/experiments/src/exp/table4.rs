//! Table IV — performance vs. the number of microphones used (D2, lab,
//! max-spread selection order). More channels help up to 5; 6 dips
//! slightly.

use crate::context::Context;
use crate::exp::evaluate;
use crate::report::{pct, ExperimentResult};
use headtalk::facing::FacingDefinition;
use headtalk::orientation::ModelKind;
use ht_ml::Dataset;

/// The paper's Table IV channel subsets (1-indexed in the paper; 0-indexed
/// here).
pub fn subsets() -> Vec<(usize, Vec<usize>)> {
    vec![
        (2, vec![0, 1]),
        (3, vec![0, 1, 4]),
        (4, vec![0, 1, 3, 4]),
        (5, vec![0, 1, 2, 3, 4]),
        (6, vec![0, 1, 2, 3, 4, 5]),
    ]
}

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when more microphones strictly hurt (2 mics beating 5
/// by a clear margin).
pub fn run(ctx: &Context) -> Result<ExperimentResult, String> {
    let paper = [
        "95.70 / 95.60 / 95.83 / 95.71",
        "95.83 / 94.60 / 97.22 / 95.90",
        "96.67 / 96.77 / 96.67 / 96.70",
        "98.61 / 100 / 97.22 / 98.59",
        "97.22 / 97.23 / 97.22 / 97.22",
    ];
    let mut res = ExperimentResult::new(
        "table4",
        "Table IV: accuracy/precision/recall/F1 per microphone count (D2, lab)",
        "performance improves with channels up to 5 microphones, then dips slightly at 6",
    );
    let def = FacingDefinition::Definition4;
    let mut accs = Vec::new();
    for ((n, mics), paper_row) in subsets().into_iter().zip(paper) {
        let records = ctx.table4_subset_features(&mics);
        // Cross-session evaluation as in the main protocol.
        let mut acc_dir = Vec::new();
        let mut prec = Vec::new();
        let mut rec = Vec::new();
        let mut f1 = Vec::new();
        for (train_s, test_s) in [(0u32, 1u32), (1, 0)] {
            let mut feats = Vec::new();
            let mut labels = Vec::new();
            for r in records.iter().filter(|r| r.spec.session == train_s) {
                if let Some(l) = def.label(r.spec.angle_deg) {
                    feats.push(r.vector.clone());
                    labels.push(l);
                }
            }
            let ds = Dataset::from_parts(feats, labels).map_err(|e| e.to_string())?;
            let det = headtalk::orientation::OrientationDetector::fit(&ds, ModelKind::Svm, 7)
                .map_err(|e| e.to_string())?;
            let c = evaluate(&det, &records, def, |s| s.session == test_s);
            acc_dir.push(c.accuracy());
            prec.push(c.precision());
            rec.push(c.recall());
            f1.push(c.f1());
        }
        let acc = ht_dsp::stats::mean(&acc_dir);
        res.push_row(
            format!("{n} mics [{mics:?}]"),
            format!("acc/P/R/F1 = {paper_row}"),
            format!(
                "{} / {} / {} / {}",
                pct(acc),
                pct(ht_dsp::stats::mean(&prec)),
                pct(ht_dsp::stats::mean(&rec)),
                pct(ht_dsp::stats::mean(&f1)),
            ),
            Some(acc),
        );
        accs.push(acc);
    }
    // Shape check: the best subset uses more than 2 microphones.
    let best = accs
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    if best == 0 && accs[0] > accs[3] + 0.02 {
        return Err(format!("2 microphones unexpectedly best: {accs:?}"));
    }
    res.note("Microphones selected in max-spread order from D2's six-mic ring (§IV-B6).");
    Ok(res)
}
