//! Streaming wake pipeline — frame-by-frame processing with the early-exit
//! gate, checked against the batch reference path.
//!
//! Not a paper table: this experiment validates the repo's streaming
//! engine (`headtalk::WakeStream`) at experiment scale. For every scenario
//! it streams the capture twice (hop-aligned chunks and ragged 997-sample
//! chunks) and demands the decision and feature vector be byte-identical
//! to `HeadTalk::decide_batch` over the same audio; the report rows pin
//! frames analyzed, the advisory gate's early-exit frame, the verdict, and
//! a bitwise feature checksum. Per-frame wall-clock latency is
//! deliberately absent — hardware-dependent numbers live in the
//! `stream_latency` bench (`BENCH_stream.json`), keeping this report
//! byte-stable for the golden-determinism contract.

use crate::context::Context;
use crate::report::ExperimentResult;
use headtalk::liveness::LivenessDetector;
use headtalk::stream::{StreamConfig, WakeVerdict};
use headtalk::{HeadTalk, PipelineConfig};
use ht_datagen::{CaptureSpec, SourceKind};
use ht_ml::Dataset;
use ht_speech::replay::SpeakerModel;
use ht_speech::voice::VoiceProfile;

/// The streamed scenarios: facing/averted humans and replays, all on the
/// default device so the width matches the §IV-A2 orientation model.
fn scenarios() -> Vec<(&'static str, CaptureSpec)> {
    let replay = || SourceKind::Replay {
        model: SpeakerModel::SonySrsX5,
        voice: VoiceProfile::adult_male(),
    };
    vec![
        ("facing human (0°)", CaptureSpec::baseline(0x5E40)),
        (
            "oblique human (45°)",
            CaptureSpec {
                angle_deg: 45.0,
                ..CaptureSpec::baseline(0x5E41)
            },
        ),
        (
            "backward human (180°)",
            CaptureSpec {
                angle_deg: 180.0,
                ..CaptureSpec::baseline(0x5E42)
            },
        ),
        (
            "facing replay (0°)",
            CaptureSpec {
                source: replay(),
                ..CaptureSpec::baseline(0x5E43)
            },
        ),
        (
            "backward replay (180°)",
            CaptureSpec {
                angle_deg: 180.0,
                source: replay(),
                ..CaptureSpec::baseline(0x5E44)
            },
        ),
    ]
}

fn stream_capture(
    ht: &HeadTalk,
    channels: &[Vec<f64>],
    chunk_len: usize,
) -> Result<headtalk::StreamOutcome, String> {
    let mut stream = ht.streamer(channels.len()).map_err(|e| e.to_string())?;
    let len = channels[0].len();
    let mut pos = 0;
    while pos < len {
        let end = (pos + chunk_len).min(len);
        let refs: Vec<&[f64]> = channels.iter().map(|c| &c[pos..end]).collect();
        stream.push(&refs).map_err(|e| e.to_string())?;
        pos = end;
    }
    stream.finalize().map_err(|e| e.to_string())
}

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when any scenario's streamed outcome diverges from the
/// batch reference, or when training/rendering fails.
pub fn run(ctx: &Context) -> Result<ExperimentResult, String> {
    let config = PipelineConfig::default();
    let orientation = crate::exp::default_model(ctx)?;

    // Liveness: the §IV-A1 own-data corpus, same preparation as the
    // pipeline applies at inference time.
    let own = ctx.liveness_own();
    let feats: Vec<Vec<f64>> = own.iter().map(|r| r.vector.clone()).collect();
    let labels: Vec<usize> = own
        .iter()
        .map(|r| usize::from(r.spec.source.is_live()))
        .collect();
    let live_ds = Dataset::from_parts(feats, labels).map_err(|e| e.to_string())?;
    let liveness = LivenessDetector::fit(&live_ds, 16, 8).map_err(|e| e.to_string())?;
    let ht = HeadTalk::new(config, liveness, orientation).map_err(|e| e.to_string())?;

    let hop = StreamConfig::for_pipeline(ht.config()).hop;
    let mut res = ExperimentResult::new(
        "stream",
        "streaming wake pipeline: frame-by-frame engine vs batch reference",
        "every chunking of every scenario reproduces the batch decision and features bit-for-bit; the advisory gate never fires on a facing live human",
    );

    for (name, spec) in scenarios() {
        let channels = spec.render().map_err(|e| e.to_string())?;
        let (batch_decision, batch_features) =
            ht.decide_batch(&channels).map_err(|e| e.to_string())?;
        let hop_run = stream_capture(&ht, &channels, hop)?;
        let ragged_run = stream_capture(&ht, &channels, 997)?;

        let mut identical = true;
        for outcome in [&hop_run, &ragged_run] {
            identical &= outcome.decision == Some(batch_decision);
            identical &= outcome.features.len() == batch_features.len()
                && outcome
                    .features
                    .iter()
                    .zip(&batch_features)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
        }
        if !identical {
            return Err(format!("{name}: streamed outcome diverges from batch"));
        }
        if name.starts_with("facing human") && hop_run.early_exit.is_some() {
            return Err(format!(
                "{name}: advisory gate fired on a facing live human: {:?}",
                hop_run.early_exit
            ));
        }

        let verdict = match hop_run.verdict {
            WakeVerdict::Allow => "allow",
            WakeVerdict::SoftMute => "soft-mute",
            WakeVerdict::Undecided => "undecided",
        };
        let exit = match hop_run.early_exit {
            Some(e) => format!("frame {} ({:?})", e.frame, e.reason),
            None => "none".to_string(),
        };
        let checksum: f64 = batch_features.iter().sum();
        res.push_row(
            name,
            "",
            format!(
                "{} frames, verdict {verdict}, early exit {exit}, checksum {:016x}, stream == batch",
                hop_run.frames,
                checksum.to_bits(),
            ),
            Some(checksum),
        );
    }

    res.note(
        "Streaming runs twice per scenario (hop-aligned 480-sample chunks and ragged \
         997-sample chunks); both must match the batch path bit-for-bit. The tighter \
         per-chunking contract lives in tests/stream_golden.rs.",
    );
    res.note(
        "Per-frame latency is excluded on purpose (hardware-dependent): the \
         stream_latency bench gates p95 against the 10 ms hop deadline and emits \
         BENCH_stream.json.",
    );
    Ok(res)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_stay_on_the_default_device() {
        // default_model trains at the default device's feature width; a
        // scenario on another device would fail the width check at
        // streamer() time. Pin the invariant here, cheaply.
        let baseline = CaptureSpec::baseline(0);
        let list = scenarios();
        assert_eq!(list.len(), 5);
        for (name, spec) in &list {
            assert_eq!(spec.device, baseline.device, "{name}");
            assert_eq!(spec.room, baseline.room, "{name}");
        }
        // Seeds are distinct so no two scenarios share a rendered capture.
        let mut seeds: Vec<u64> = list.iter().map(|(_, s)| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), list.len());
    }
}
