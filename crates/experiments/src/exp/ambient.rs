//! §IV-B10 — ambient noise: a clean-trained model loses accuracy under
//! 45 dB white noise and loses more under TV noise.

use crate::context::Context;
use crate::exp::{default_model, evaluate};
use crate::report::{pct, ExperimentResult};
use headtalk::facing::FacingDefinition;
use ht_acoustics::noise::NoiseKind;

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when noise does not degrade accuracy at all.
pub fn run(ctx: &Context) -> Result<ExperimentResult, String> {
    let det = default_model(ctx)?;
    let def = FacingDefinition::Definition4;
    let records = ctx.dataset4();
    let mut res = ExperimentResult::new(
        "ambient",
        "§IV-B10: impact of ambient noise (45 dB SPL)",
        "accuracy degrades under injected noise; TV noise (speech-like) hurts more than white noise",
    );
    let mut accs = Vec::new();
    for (kind, paper_acc) in [(NoiseKind::White, "89.00%"), (NoiseKind::Tv, "83.33%")] {
        let c = evaluate(
            &det,
            &records,
            def,
            |s| matches!(s.ambient, Some((k, _)) if k == kind),
        );
        if c.total() == 0 {
            return Err(format!("{kind:?}: empty evaluation set"));
        }
        let acc = c.accuracy();
        res.push_row(
            format!("{kind:?} noise"),
            paper_acc,
            format!("{} ({} samples)", pct(acc), c.total()),
            Some(acc),
        );
        accs.push(acc);
    }
    // Clean baseline for comparison (default-setting test sessions).
    let d1 = ctx.dataset1();
    let clean = evaluate(&det, &d1, def, crate::exp::is_default_setting);
    res.push_row(
        "no injected noise (reference)",
        "98.08% (lab)",
        pct(clean.accuracy()),
        Some(clean.accuracy()),
    );
    if accs[0] >= clean.accuracy() && accs[1] >= clean.accuracy() {
        return Err("noise did not degrade accuracy".into());
    }
    res.note("Model trained on clean data only (§IV-B10 protocol). Reference row is in-sample for context.");
    Ok(res)
}
