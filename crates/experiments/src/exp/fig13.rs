//! Fig. 13 — F1-score per device: D1 ≥ D2 ≥ D3 (larger apertures hear
//! lower frequencies and longer delays).

use crate::context::Context;
use crate::exp::{main_grid, mean_std_pct};
use crate::report::ExperimentResult;
use ht_acoustics::array::Device;

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when D3 beats D1 by a clear margin (ordering broken).
pub fn run(ctx: &Context) -> Result<ExperimentResult, String> {
    let cells = main_grid(ctx)?;
    let paper = [
        (Device::D1, "97.47%"),
        (Device::D2, "96.26%"),
        (Device::D3, "94.99%"),
    ];
    let mut res = ExperimentResult::new(
        "fig13",
        "Fig. 13: F1-score for different devices",
        "D1 (8.5 cm aperture) ≥ D2 (9 cm, the default) ≥ D3 (6.5 cm)",
    );
    let mut means = Vec::new();
    for (device, paper_f1) in paper {
        let vals: Vec<f64> = cells
            .iter()
            .filter(|c| c.device == device)
            .map(|c| c.f1)
            .collect();
        let m = ht_dsp::stats::mean(&vals);
        res.push_row(
            format!("{device:?} ({})", device.name()),
            format!("mean F1 {paper_f1}"),
            format!("{} over {} cells", mean_std_pct(&vals), vals.len()),
            Some(m),
        );
        means.push(m);
    }
    // The headline ordering: the smallest-aperture device (D3) must not be
    // the best.
    if means[2] > means[0] + 0.01 && means[2] > means[1] + 0.01 {
        return Err(format!("D3 unexpectedly best: {means:?}"));
    }
    res.note("12 F1 values per device: 2 sessions × 3 wake words × 2 rooms.");
    Ok(res)
}
