//! §IV-B2 — impact of distance: 36 accuracy values (2 sessions × 3 devices
//! × 2 rooms × 3 wake words) per distance; accuracy decreases with distance
//! but stays above ~90 % at 5 m.

use crate::context::Context;
use crate::exp::{main_grid, mean_std_pct};
use crate::report::ExperimentResult;

/// Runs the experiment.
///
/// # Errors
///
/// Returns an error when accuracy is not monotone in distance or collapses
/// at 5 m.
pub fn run(ctx: &Context) -> Result<ExperimentResult, String> {
    let cells = main_grid(ctx)?;
    let paper = ["98.38 ± 2.41%", "97.50 ± 4.90%", "92.55 ± 7.19%"];
    let mut res = ExperimentResult::new(
        "distance",
        "§IV-B2: impact of distance (1 m / 3 m / 5 m)",
        "accuracy decreases with distance yet stays above ~90% at 5 m",
    );
    let mut means = Vec::new();
    for (k, d) in [1.0, 3.0, 5.0].into_iter().enumerate() {
        let vals: Vec<f64> = cells.iter().map(|c| c.per_distance[k]).collect();
        let m = ht_dsp::stats::mean(&vals);
        res.push_row(
            format!("{d} m"),
            paper[k],
            format!("{} over {} cells", mean_std_pct(&vals), vals.len()),
            Some(m),
        );
        means.push(m);
    }
    if !(means[0] >= means[1] && means[1] >= means[2]) {
        return Err(format!("distance trend not monotone: {means:?}"));
    }
    if means[2] < 0.85 {
        return Err(format!("5 m accuracy collapsed: {:.3}", means[2]));
    }
    res.note("Each cell trains on the opposite session of the same (device, room, word) setting under Definition-4.");
    Ok(res)
}
