//! Per-experiment observability scoping and emission.
//!
//! `headtalk-repro` brackets every experiment with [`begin`] / [`emit`]:
//! the registry is cleared going in, and whatever the run recorded comes
//! out as a stage-timing breakdown scoped to that one experiment —
//! `HT_OBS=summary` prints a table to stderr, `HT_OBS=json` writes
//! `<id>.obs.json` next to the experiment's result JSON, and `HT_OBS=off`
//! (the default) does nothing at all.

use std::path::Path;

/// Opens an experiment's observability scope: clears the global registry so
/// the upcoming run's spans and counters are attributable to this
/// experiment alone. No-op when observability is off.
pub fn begin() {
    if ht_obs::mode() != ht_obs::Mode::Off {
        ht_obs::registry().reset();
    }
}

/// Emits whatever the registry accumulated since [`begin`], according to
/// the active mode. Returns the path written under `HT_OBS=json` (no file
/// is written when nothing was recorded).
pub fn emit(id: &str, results_dir: &Path) -> Option<std::path::PathBuf> {
    match ht_obs::mode() {
        ht_obs::Mode::Off => None,
        ht_obs::Mode::Summary => {
            let snap = ht_obs::registry().snapshot();
            if !snap.is_empty() {
                eprintln!("[ht-obs] {id}:\n{}", snap.summary_table());
            }
            None
        }
        ht_obs::Mode::Json => {
            let snap = ht_obs::registry().snapshot();
            if snap.is_empty() {
                return None;
            }
            let path = results_dir.join(format!("{id}.obs.json"));
            match std::fs::write(&path, ht_dsp::obs::obs_report(&snap)) {
                Ok(()) => Some(path),
                Err(e) => {
                    eprintln!("[ht-obs] could not write {}: {e}", path.display());
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not several: mode and registry are process-wide, so
    // splitting these assertions across tests would race under parallel
    // test threads.
    #[test]
    fn emit_writes_json_report_scoped_by_begin() {
        ht_obs::set_mode(ht_obs::Mode::Off);
        assert!(emit("unit", Path::new("/nonexistent")).is_none());

        ht_obs::set_mode(ht_obs::Mode::Json);
        ht_obs::registry().reset();
        ht_obs::record_ns("test.stale", 10); // must not survive begin()
        begin();
        ht_obs::record_ns("test.fresh", 1_000);
        let dir = std::env::temp_dir().join("ht_obs_emit_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = emit("unit", &dir).expect("a report is written");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("test.fresh"));
        assert!(!text.contains("test.stale"));
        let _ = std::fs::remove_file(&path);
        ht_obs::set_mode(ht_obs::Mode::Off);
        ht_obs::registry().reset();
    }
}
