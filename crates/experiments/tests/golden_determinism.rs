//! Golden determinism: a small end-to-end experiment — render captures,
//! extract orientation features, train a forest, evaluate folds, emit a
//! JSON report — must produce **byte-identical** output serially and on a
//! 4-thread pool.
//!
//! This is the workspace's executable proof of the ht-par contract: thread
//! count is a pure wall-clock knob, never a results knob. Every parallel
//! layer in the pipeline is exercised here: `Scene::render` (per mic),
//! the frame-based feature extraction (parallel per capture),
//! `RandomForest::fit` (per tree), and `evaluate_folds` (per fold).

use headtalk::{HeadTalk, PipelineConfig};
use ht_datagen::CaptureSpec;
use ht_dsp::json::ToJson;
use ht_dsp::rng::{SeedableRng, StdRng};
use ht_experiments::report::{pct, ExperimentResult};
use ht_ml::crossval::{evaluate_folds, stratified_folds};
use ht_ml::forest::{ForestParams, RandomForest};
use ht_ml::metrics::accuracy;
use ht_ml::tree::TreeParams;
use ht_ml::{Classifier, Dataset};
use ht_par::Pool;

/// A tiny facing-vs-backward capture set: 3 facing, 3 backward, distinct
/// seeds. Small enough to render in seconds, rich enough to drive every
/// parallel layer.
fn specs() -> Vec<CaptureSpec> {
    let mut out = Vec::new();
    for (i, angle) in [0.0, 0.0, 0.0, 180.0, 180.0, 180.0].into_iter().enumerate() {
        let mut s = CaptureSpec::baseline(1000 + i as u64);
        s.angle_deg = angle;
        out.push(s);
    }
    out
}

/// The full mini-experiment, returning the serialized report.
fn run_experiment() -> String {
    let specs = specs();
    let cfg = PipelineConfig::for_device(specs[0].device);

    // Render + feature-extract every capture (parallel per capture, and
    // within a capture per mic / per pair / per channel).
    let feats = ht_par::par_map(&specs, |spec| {
        let channels = spec.render().expect("valid scenario geometry");
        HeadTalk::orientation_features(&cfg, &channels).expect("feature extraction")
    });
    let labels: Vec<usize> = specs
        .iter()
        .map(|s| usize::from(s.angle_deg.abs() < 90.0))
        .collect();
    let ds = Dataset::from_parts(feats.clone(), labels).expect("homogeneous features");

    // 2-fold CV with per-fold forked RNG streams; each fold trains a small
    // forest (parallel per tree).
    let params = ForestParams {
        n_trees: 8,
        tree: TreeParams {
            max_splits: 8,
            min_samples_split: 2,
            max_features: None,
        },
    };
    let mut fold_rng = StdRng::seed_from_u64(0x60CD);
    let folds = stratified_folds(&ds, 2, &mut fold_rng);
    let fold_accs = evaluate_folds(&ds, &folds, 0x60CD, |_, train, test, rng| {
        let rf = RandomForest::fit(train, &params, rng).expect("forest fit");
        accuracy(test.labels(), &rf.predict_batch(test.features()))
    });

    let mut res = ExperimentResult::new(
        "golden_determinism",
        "mini end-to-end run (render → features → forest → folds)",
        "byte-identical JSON for any thread count",
    );
    // Feature checksums pin the rendered audio and extraction bit-exactly.
    for (i, f) in feats.iter().enumerate() {
        let checksum: f64 = f.iter().sum();
        res.push_row(
            format!("capture {i} feature checksum"),
            "",
            format!("{:016x}", checksum.to_bits()),
            Some(checksum),
        );
    }
    for (i, acc) in fold_accs.iter().enumerate() {
        res.push_row(format!("fold {i}"), "", pct(*acc), Some(*acc));
    }
    res.to_json().pretty()
}

#[test]
fn report_bytes_are_identical_serial_vs_four_threads() {
    let serial = Pool::new(1).install(run_experiment);
    let parallel = Pool::new(4).install(run_experiment);
    assert!(
        serial == parallel,
        "serial and 4-thread reports diverge:\n--- serial ---\n{serial}\n--- 4 threads ---\n{parallel}"
    );
    // And the report is non-trivial: it contains every expected row.
    assert!(serial.contains("capture 5 feature checksum"));
    assert!(serial.contains("fold 1"));
}

#[test]
fn repeated_runs_on_one_pool_are_stable() {
    let pool = Pool::new(3);
    let a = pool.install(run_experiment);
    let b = pool.install(run_experiment);
    assert!(a == b, "two runs on the same pool diverge");
}

/// Observability must be read-only: recording spans and counters may cost
/// time but can never perturb computed results. The report bytes with
/// `HT_OBS=json` recording through every instrumented layer must equal the
/// bytes with observability off.
#[test]
fn report_bytes_are_identical_with_observability_on() {
    let pool = Pool::new(2);
    ht_obs::set_mode(ht_obs::Mode::Off);
    let off = pool.install(run_experiment);
    ht_obs::set_mode(ht_obs::Mode::Json);
    ht_obs::registry().reset();
    let on = pool.install(run_experiment);
    let snap = ht_obs::registry().snapshot();
    ht_obs::set_mode(ht_obs::Mode::Off);
    assert!(
        off == on,
        "observability perturbed the report:\n--- off ---\n{off}\n--- json ---\n{on}"
    );
    // And the run actually recorded through the instrumented layers, so the
    // equality above is not vacuous.
    assert!(
        snap.span("wake.feature_extract").is_some(),
        "no feature-extract span recorded"
    );
    assert!(
        snap.span("stream.srp").is_some(),
        "no per-frame SRP span recorded"
    );
    assert!(
        snap.counter("par.tasks").unwrap_or(0) > 0,
        "no pool tasks counted"
    );
}
