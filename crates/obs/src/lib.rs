//! # ht-obs — zero-dependency observability for the HeadTalk pipeline
//!
//! The paper reports per-stage runtime as a first-class result (§IV-B15:
//! liveness on one channel, orientation on four); this crate is the
//! telemetry substrate that lets the reproduction attribute wall-clock to
//! denoise vs. SRP-PHAT vs. classification, and every future scaling layer
//! (batching, sharding, async serving) report through one registry.
//!
//! Three pieces, all `std`-only (the workspace's hermetic-build contract):
//!
//! * [`span`] — structured, nestable timing scopes. A [`Span`] is a drop
//!   guard: it samples the clock on creation and records the elapsed
//!   nanoseconds into the global registry on drop. **When observability is
//!   off the span is free**: creating one costs an atomic load and a
//!   branch, and its drop is a `None` check — no clock read, no lock.
//! * [`counter_add`] — monotonic named counters (task counts, steals, …).
//! * [`Registry`] — the thread-safe global store: counters plus log-scale
//!   latency histograms per span name, snapshotted as p50/p95/p99 with
//!   deterministic (sorted) ordering so serialized reports are byte-stable
//!   for a given snapshot.
//!
//! The mode switch is the `HT_OBS` environment variable (`off` | `summary`
//! | `json`, default `off`), read once; tests and harnesses override it
//! programmatically with [`set_mode`]. The recording *content* is wall-clock
//! and therefore run-dependent, but recording **never perturbs computed
//! results** — the workspace's golden-determinism test proves the pipeline's
//! reports are byte-identical with observability off and on.
//!
//! # Example
//!
//! ```
//! ht_obs::set_mode(ht_obs::Mode::Json);
//! ht_obs::registry().reset();
//! {
//!     let _outer = ht_obs::span("example.outer");
//!     let _inner = ht_obs::span("example.inner"); // nests freely
//!     ht_obs::counter_add("example.items", 3);
//! }
//! let snap = ht_obs::registry().snapshot();
//! assert_eq!(snap.counter("example.items"), Some(3));
//! assert_eq!(snap.span("example.inner").unwrap().count, 1);
//! ht_obs::set_mode(ht_obs::Mode::Off);
//! ```

mod hist;

pub use hist::{Hist, HistSnapshot};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The observability mode (the `HT_OBS` environment switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Record nothing; spans and counters are no-ops (the default).
    Off,
    /// Record, and consumers print a human-readable table.
    Summary,
    /// Record, and consumers emit machine-readable JSON reports.
    Json,
}

/// Mode encoding in [`MODE`]: 0 = uninitialized (read `HT_OBS` on first
/// use), then `Mode as u8 + 1`.
static MODE: AtomicU8 = AtomicU8::new(0);

/// The active mode: `HT_OBS` on first call (`off` | `summary` | `json`;
/// unknown values warn once and mean `off`), or the latest [`set_mode`].
pub fn mode() -> Mode {
    match MODE.load(Ordering::Relaxed) {
        1 => Mode::Off,
        2 => Mode::Summary,
        3 => Mode::Json,
        _ => init_mode_from_env(),
    }
}

#[cold]
fn init_mode_from_env() -> Mode {
    let m = match std::env::var("HT_OBS").as_deref() {
        Ok("summary") => Mode::Summary,
        Ok("json") => Mode::Json,
        Ok("off") | Ok("") | Err(_) => Mode::Off,
        Ok(other) => {
            eprintln!("[ht-obs] ignoring unknown HT_OBS={other:?} (use off|summary|json)");
            Mode::Off
        }
    };
    set_mode(m);
    m
}

/// Overrides the mode (tests, benches, harnesses). Takes effect for every
/// span/counter created afterwards, process-wide.
pub fn set_mode(m: Mode) {
    MODE.store(m as u8 + 1, Ordering::Relaxed);
}

/// `true` when spans and counters record (mode is not [`Mode::Off`]).
///
/// This is the disabled-path contract: the whole check is one relaxed
/// atomic load plus a branch (after the one-time env read).
#[inline]
pub fn enabled() -> bool {
    // 1 encodes Off; 0 (uninitialized) falls through to the env read.
    match MODE.load(Ordering::Relaxed) {
        1 => false,
        2 | 3 => true,
        _ => init_mode_from_env() != Mode::Off,
    }
}

/// A structured timing scope: records `name → elapsed ns` into the global
/// registry when dropped. Obtain via [`span`]; spans nest freely (each guard
/// times its own scope independently).
#[must_use = "a span measures the scope it is bound to; an unbound span measures nothing"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// The span's registry key.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            record_ns(self.name, t0.elapsed().as_nanos() as u64);
        }
    }
}

/// Opens a timing scope. When observability is off this is an atomic load,
/// a branch, and a `None` — the clock is never read.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: if enabled() {
            Some(Instant::now())
        } else {
            None
        },
    }
}

/// Records one latency observation directly (the hook [`Span`] uses; public
/// so harnesses can feed externally-timed values). No-op when off.
pub fn record_ns(name: &'static str, ns: u64) {
    if enabled() {
        registry().record_ns(name, ns);
    }
}

/// Adds to a named monotonic counter. No-op when off.
#[inline]
pub fn counter_add(name: &'static str, n: u64) {
    if enabled() {
        registry().counter_add(name, n);
    }
}

/// Raises a named high-water-mark counter to `v` if `v` exceeds its current
/// value (gauge maxima: queue depths, arena occupancy, in-flight sessions).
/// No-op when off. Use names distinct from [`counter_add`] counters — both
/// share one namespace, and mixing sum and max semantics on one name would
/// corrupt it.
#[inline]
pub fn counter_max(name: &'static str, v: u64) {
    if enabled() {
        registry().counter_max(name, v);
    }
}

/// The global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

struct Inner {
    counters: BTreeMap<&'static str, u64>,
    spans: BTreeMap<&'static str, Hist>,
}

/// A thread-safe store of counters and per-span latency histograms.
///
/// Keys are `&'static str` (span names are code, not data), and snapshots
/// iterate the underlying `BTreeMap`s, so a snapshot's ordering — and
/// therefore its serialized form — is deterministic.
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    fn new() -> Registry {
        Registry {
            inner: Mutex::new(Inner {
                counters: BTreeMap::new(),
                spans: BTreeMap::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Observability must never take the process down: a panic while the
        // lock was held leaves the data intact (only u64 bumps happen under
        // the lock), so clear the poison and carry on.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records one latency observation under `name`.
    pub fn record_ns(&self, name: &'static str, ns: u64) {
        self.lock().spans.entry(name).or_default().record(ns);
    }

    /// Adds to the counter `name`.
    pub fn counter_add(&self, name: &'static str, n: u64) {
        *self.lock().counters.entry(name).or_insert(0) += n;
    }

    /// Raises the counter `name` to `v` if `v` exceeds its current value.
    pub fn counter_max(&self, name: &'static str, v: u64) {
        let mut inner = self.lock();
        let slot = inner.counters.entry(name).or_insert(0);
        *slot = (*slot).max(v);
    }

    /// Clears every counter and histogram (per-experiment scoping).
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.counters.clear();
        inner.spans.clear();
    }

    /// A point-in-time copy of every counter and histogram summary, sorted
    /// by name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.lock();
        RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            spans: inner
                .spans
                .iter()
                .map(|(k, h)| (k.to_string(), h.snapshot()))
                .collect(),
        }
    }
}

/// A deterministic (name-sorted) snapshot of the registry.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistrySnapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, summary)` latency histograms, sorted by name.
    pub spans: Vec<(String, HistSnapshot)>,
}

impl RegistrySnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a span summary by name.
    pub fn span(&self, name: &str) -> Option<&HistSnapshot> {
        self.spans.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.spans.is_empty()
    }

    /// A human-readable table (the `HT_OBS=summary` rendering).
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "{:<38} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                "span", "count", "p50", "p95", "p99", "mean"
            ));
            for (name, h) in &self.spans {
                out.push_str(&format!(
                    "{:<38} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                    name,
                    h.count,
                    fmt_ns(h.p50_ns as f64),
                    fmt_ns(h.p95_ns as f64),
                    fmt_ns(h.p99_ns as f64),
                    fmt_ns(h.mean_ns),
                ));
            }
        }
        for (name, v) in &self.counters {
            out.push_str(&format!("{name:<38} {v:>8}\n"));
        }
        out
    }
}

/// Human-readable nanoseconds (`412ns`, `1.7µs`, `2.1ms`, `4.2s`).
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the global-state tests (mode and registry are process-wide).
    fn lock_global() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn spans_record_only_when_enabled() {
        let _g = lock_global();
        set_mode(Mode::Off);
        registry().reset();
        {
            let _s = span("test.off");
        }
        assert!(registry().snapshot().span("test.off").is_none());

        set_mode(Mode::Json);
        {
            let _s = span("test.on");
        }
        let snap = registry().snapshot();
        assert_eq!(snap.span("test.on").unwrap().count, 1);
        set_mode(Mode::Off);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let _g = lock_global();
        set_mode(Mode::Summary);
        registry().reset();
        counter_add("test.counter", 2);
        counter_add("test.counter", 3);
        assert_eq!(registry().snapshot().counter("test.counter"), Some(5));
        registry().reset();
        assert!(registry().snapshot().is_empty());
        set_mode(Mode::Off);
    }

    #[test]
    fn counter_max_keeps_the_high_water_mark() {
        let _g = lock_global();
        set_mode(Mode::Json);
        registry().reset();
        counter_max("test.hwm", 3);
        counter_max("test.hwm", 9);
        counter_max("test.hwm", 5);
        assert_eq!(registry().snapshot().counter("test.hwm"), Some(9));
        set_mode(Mode::Off);
        counter_max("test.hwm", 100);
        assert_eq!(
            registry().snapshot().counter("test.hwm"),
            Some(9),
            "disabled counter_max must not record"
        );
        registry().reset();
    }

    #[test]
    fn snapshot_ordering_is_sorted_and_stable() {
        let _g = lock_global();
        set_mode(Mode::Json);
        registry().reset();
        counter_add("z.last", 1);
        counter_add("a.first", 1);
        record_ns("m.middle", 100);
        let snap = registry().snapshot();
        assert_eq!(snap.counters[0].0, "a.first");
        assert_eq!(snap.counters[1].0, "z.last");
        assert_eq!(snap, registry().snapshot());
        set_mode(Mode::Off);
        registry().reset();
    }

    #[test]
    fn nested_spans_each_record() {
        let _g = lock_global();
        set_mode(Mode::Json);
        registry().reset();
        {
            let _outer = span("test.outer");
            let _inner = span("test.inner");
        }
        let snap = registry().snapshot();
        assert_eq!(snap.span("test.outer").unwrap().count, 1);
        assert_eq!(snap.span("test.inner").unwrap().count, 1);
        set_mode(Mode::Off);
        registry().reset();
    }

    #[test]
    fn summary_table_mentions_every_name() {
        let _g = lock_global();
        set_mode(Mode::Summary);
        registry().reset();
        record_ns("test.table_span", 1_500);
        counter_add("test.table_counter", 7);
        let table = registry().snapshot().summary_table();
        assert!(table.contains("test.table_span"));
        assert!(table.contains("test.table_counter"));
        assert!(table.contains("p99"));
        set_mode(Mode::Off);
        registry().reset();
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(412.0), "412ns");
        assert_eq!(fmt_ns(1_700.0), "1.7µs");
        assert_eq!(fmt_ns(2_100_000.0), "2.1ms");
        assert_eq!(fmt_ns(4_200_000_000.0), "4.20s");
    }
}
