//! Log-scale latency histograms.
//!
//! An HDR-style bucketing: values below 16 ns get exact buckets, larger
//! values share 8 sub-buckets per power of two (relative error ≤ 12.5 %),
//! which spans nanoseconds to hours in 488 fixed buckets. Quantiles are
//! read from bucket midpoints, so two histograms with the same recorded
//! values always snapshot identically — ordering of observations never
//! matters.

/// Sub-bucket resolution: 2^SUB buckets per power of two.
const SUB: u32 = 3;
/// Values below this get one exact bucket each.
const EXACT: u64 = 1 << (SUB + 1);
/// Total bucket count (covers the full `u64` nanosecond range).
const BUCKETS: usize = ((64 - SUB as usize) + 1) << SUB;

/// A log-scale histogram of nanosecond latencies plus exact count/sum/
/// min/max side-channels.
#[derive(Debug, Clone)]
pub struct Hist {
    buckets: Vec<u32>,
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

/// The bucket index for a nanosecond value.
fn bucket_index(v: u64) -> usize {
    if v < EXACT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // ≥ SUB + 1
    let octave = msb - SUB;
    let sub = ((v >> octave) & ((1 << SUB) - 1)) as usize;
    (((octave + 1) as usize) << SUB) + sub
}

/// The midpoint of a bucket's value range (the quantile representative).
fn bucket_mid(idx: usize) -> u64 {
    if idx < EXACT as usize {
        return idx as u64;
    }
    let octave = (idx >> SUB) as u32 - 1;
    let sub = (idx & ((1 << SUB) - 1)) as u64;
    let lo = ((1u64 << SUB) + sub) << octave;
    lo + (1u64 << octave) / 2
}

impl Hist {
    /// Records one observation.
    pub fn record(&mut self, ns: u64) {
        self.buckets[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The value at quantile `q` in `[0, 1]` (bucket midpoint; exact for
    /// values under 16 ns, within 12.5 % above, clamped into the exact
    /// observed `[min, max]` so a midpoint can never report a latency
    /// outside the recorded range). 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Rank of the target observation, 1-based, clamped into range.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += u64::from(c);
            if seen >= rank {
                return bucket_mid(idx).clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }

    /// Summarizes as count, mean and the p50/p95/p99 latencies.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count,
            mean_ns: if self.count == 0 {
                0.0
            } else {
                self.sum_ns as f64 / self.count as f64
            },
            p50_ns: self.quantile(0.50),
            p95_ns: self.quantile(0.95),
            p99_ns: self.quantile(0.99),
            min_ns: if self.count == 0 { 0 } else { self.min_ns },
            max_ns: self.max_ns,
        }
    }
}

/// A point-in-time summary of one span's latency distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSnapshot {
    /// Number of recorded scopes.
    pub count: u64,
    /// Exact mean latency in nanoseconds.
    pub mean_ns: f64,
    /// Median latency (log-bucket midpoint).
    pub p50_ns: u64,
    /// 95th-percentile latency.
    pub p95_ns: u64,
    /// 99th-percentile latency.
    pub p99_ns: u64,
    /// Exact fastest observation.
    pub min_ns: u64,
    /// Exact slowest observation.
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        let mut prev = bucket_index(0);
        assert_eq!(prev, 0);
        for v in 1..10_000u64 {
            let idx = bucket_index(v);
            assert!(
                idx == prev || idx == prev + 1,
                "jump at {v}: {prev} -> {idx}"
            );
            prev = idx;
        }
        // Spot-check octave boundaries.
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(31), 23);
        assert_eq!(bucket_index(32), 24);
        // The largest value stays in range.
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn bucket_mid_lands_inside_its_bucket() {
        for v in [0u64, 1, 7, 15, 16, 100, 1_000, 123_456, 9_999_999_999] {
            let idx = bucket_index(v);
            let mid = bucket_mid(idx);
            assert_eq!(bucket_index(mid), idx, "value {v} mid {mid}");
        }
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let mut h = Hist::default();
        for v in 1..=100u64 {
            h.record(v * 1_000); // 1µs … 100µs
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        // Log-bucket resolution is 12.5%; allow double that for midpointing.
        let close = |got: u64, want: f64| (got as f64 - want).abs() / want < 0.25;
        assert!(close(s.p50_ns, 50_000.0), "p50 {}", s.p50_ns);
        assert!(close(s.p95_ns, 95_000.0), "p95 {}", s.p95_ns);
        assert!(close(s.p99_ns, 99_000.0), "p99 {}", s.p99_ns);
        assert_eq!(s.min_ns, 1_000);
        assert_eq!(s.max_ns, 100_000);
        assert!((s.mean_ns - 50_500.0).abs() < 1e-9);
        // Midpoint quantiles are clamped into the observed range.
        for q in [s.p50_ns, s.p95_ns, s.p99_ns] {
            assert!((s.min_ns..=s.max_ns).contains(&q));
        }
    }

    #[test]
    fn order_of_observations_does_not_matter() {
        let values: Vec<u64> = (0..500).map(|i| (i * 7919) % 100_000).collect();
        let mut forward = Hist::default();
        let mut backward = Hist::default();
        for &v in &values {
            forward.record(v);
        }
        for &v in values.iter().rev() {
            backward.record(v);
        }
        assert_eq!(forward.snapshot(), backward.snapshot());
    }

    #[test]
    fn empty_histogram_snapshots_to_zeros() {
        let s = Hist::default().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_ns, 0);
        assert_eq!(s.min_ns, 0);
        assert_eq!(s.max_ns, 0);
        assert_eq!(s.mean_ns, 0.0);
    }

    #[test]
    fn single_observation_is_every_quantile() {
        let mut h = Hist::default();
        h.record(5); // exact bucket range
        assert_eq!(h.quantile(0.0), 5);
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(1.0), 5);
    }
}
