//! A small neural network: strided 1-D convolutions, dense layers, ReLU,
//! trained with Adam on binary cross-entropy.
//!
//! This is the reproduction's stand-in for the paper's wav2vec2 liveness
//! network ("wav2vec2-mini", see `DESIGN.md`): like wav2vec2 it consumes raw
//! 16 kHz audio normalized to zero mean and unit variance and encodes it with
//! a strided convolutional feature encoder before a small classification
//! head. It is orders of magnitude smaller, which is appropriate for the
//! synthetic corpus and keeps the reproduction self-contained.

use crate::dataset::Dataset;
use crate::{Classifier, MlError};
use ht_dsp::rng::SeedableRng;
use ht_dsp::rng::SliceRandom;
use ht_dsp::rng::StdRng;

/// One convolutional stage of the feature encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Output channels.
    pub out_channels: usize,
    /// Kernel width in samples.
    pub kernel: usize,
    /// Stride in samples.
    pub stride: usize,
}

/// Network architecture and training configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NeuralNetConfig {
    /// Convolutional encoder stages (empty = pure MLP on the raw input).
    pub conv: Vec<ConvSpec>,
    /// Hidden dense widths after the encoder (global-average-pooled).
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Weight-initialization / shuffling seed.
    pub seed: u64,
}

impl NeuralNetConfig {
    /// The liveness-detector architecture: a three-stage strided conv
    /// encoder over raw 16 kHz audio followed by a small dense head.
    pub fn wav2vec2_mini() -> NeuralNetConfig {
        NeuralNetConfig {
            conv: vec![
                ConvSpec {
                    out_channels: 8,
                    kernel: 16,
                    stride: 8,
                },
                ConvSpec {
                    out_channels: 16,
                    kernel: 8,
                    stride: 4,
                },
                ConvSpec {
                    out_channels: 32,
                    kernel: 8,
                    stride: 4,
                },
            ],
            hidden: vec![16],
            learning_rate: 3e-3,
            epochs: 20,
            batch: 16,
            seed: 7,
        }
    }

    /// A plain MLP (no convolutional encoder) for feature-vector inputs.
    pub fn mlp(hidden: Vec<usize>) -> NeuralNetConfig {
        NeuralNetConfig {
            conv: Vec::new(),
            hidden,
            learning_rate: 3e-3,
            epochs: 60,
            batch: 16,
            seed: 7,
        }
    }
}

/// A flat parameter block with Adam state.
#[derive(Debug, Clone, PartialEq)]
struct Params {
    w: Vec<f64>,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Params {
    fn new(w: Vec<f64>) -> Params {
        let n = w.len();
        Params {
            w,
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    fn adam_step(&mut self, grad: &[f64], lr: f64, t: usize) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let t = t as i32;
        for ((w, (m, v)), g) in self
            .w
            .iter_mut()
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
            .zip(grad.iter())
        {
            *m = B1 * *m + (1.0 - B1) * g;
            *v = B2 * *v + (1.0 - B2) * g * g;
            let mh = *m / (1.0 - B1.powi(t));
            let vh = *v / (1.0 - B2.powi(t));
            *w -= lr * mh / (vh.sqrt() + EPS);
        }
    }
}

/// A trained network.
#[derive(Debug, Clone, PartialEq)]
pub struct NeuralNet {
    config: NeuralNetConfig,
    /// Conv weights: per stage, flattened `[out][in][k]` plus `out` biases.
    conv_w: Vec<Params>,
    conv_b: Vec<Params>,
    /// Dense weights: per layer, flattened `[out][in]` plus `out` biases.
    dense_w: Vec<Params>,
    dense_b: Vec<Params>,
    /// Dense layer widths including input and the final logit.
    dense_dims: Vec<usize>,
    adam_t: usize,
    input_dim: usize,
}

/// Channels × time activation tensor.
type Tensor = Vec<Vec<f64>>;

pub(crate) fn conv_out_len(t_in: usize, kernel: usize, stride: usize) -> usize {
    if t_in < kernel {
        0
    } else {
        (t_in - kernel) / stride + 1
    }
}

impl NeuralNet {
    /// Trains a fresh network.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidData`] for empty/degenerate data, and
    /// [`MlError::InvalidParameter`] for zero epochs/batch or a conv stack
    /// that consumes the whole input.
    pub fn fit(ds: &Dataset, config: &NeuralNetConfig) -> Result<NeuralNet, MlError> {
        let mut net = NeuralNet::init(ds, config)?;
        net.train(ds, config.epochs)?;
        Ok(net)
    }

    fn init(ds: &Dataset, config: &NeuralNetConfig) -> Result<NeuralNet, MlError> {
        if ds.is_empty() {
            return Err(MlError::InvalidData("empty training set".into()));
        }
        if config.epochs == 0 || config.batch == 0 {
            return Err(MlError::InvalidParameter(
                "epochs and batch must be positive".into(),
            ));
        }
        if ds.classes().iter().any(|&c| c > 1) {
            return Err(MlError::InvalidData(
                "network expects binary labels in {0, 1}".into(),
            ));
        }
        let input_dim = ds.dim();
        // Validate the conv stack against the input length.
        let mut t = input_dim;
        let mut in_ch = 1usize;
        for spec in &config.conv {
            t = conv_out_len(t, spec.kernel, spec.stride);
            if t == 0 {
                return Err(MlError::InvalidParameter(format!(
                    "conv stage (k={}, s={}) consumes the whole input",
                    spec.kernel, spec.stride
                )));
            }
            in_ch = spec.out_channels;
        }
        let encoder_out = if config.conv.is_empty() {
            input_dim
        } else {
            in_ch
        };

        let mut rng = StdRng::seed_from_u64(config.seed);
        let he = |rng: &mut StdRng, fan_in: usize, n: usize| -> Vec<f64> {
            let sd = (2.0 / fan_in as f64).sqrt();
            (0..n).map(|_| sd * ht_dsp::rng::gaussian(rng)).collect()
        };

        let mut conv_w = Vec::new();
        let mut conv_b = Vec::new();
        let mut ch = 1usize;
        for spec in &config.conv {
            let fan_in = ch * spec.kernel;
            conv_w.push(Params::new(he(
                &mut rng,
                fan_in,
                spec.out_channels * ch * spec.kernel,
            )));
            conv_b.push(Params::new(vec![0.0; spec.out_channels]));
            ch = spec.out_channels;
        }

        let mut dense_dims = vec![encoder_out];
        dense_dims.extend(config.hidden.iter().copied());
        dense_dims.push(1);
        let mut dense_w = Vec::new();
        let mut dense_b = Vec::new();
        for win in dense_dims.windows(2) {
            let (i, o) = (win[0], win[1]);
            dense_w.push(Params::new(he(&mut rng, i, o * i)));
            dense_b.push(Params::new(vec![0.0; o]));
        }

        Ok(NeuralNet {
            config: config.clone(),
            conv_w,
            conv_b,
            dense_w,
            dense_b,
            dense_dims,
            adam_t: 0,
            input_dim,
        })
    }

    /// Continues training on (possibly new) data for `epochs` more epochs —
    /// the incremental-learning protocol of §IV-A1 ("after retraining on the
    /// 20% new training data … with just 10 epochs of training").
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidData`] if the data's dimensionality differs
    /// from the network input.
    pub fn fit_more(&mut self, ds: &Dataset, epochs: usize) -> Result<(), MlError> {
        self.train(ds, epochs)
    }

    fn train(&mut self, ds: &Dataset, epochs: usize) -> Result<(), MlError> {
        if ds.dim() != self.input_dim {
            return Err(MlError::InvalidData(format!(
                "expected input dim {}, got {}",
                self.input_dim,
                ds.dim()
            )));
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xABCD_1234);
        let mut order: Vec<usize> = (0..ds.len()).collect();
        for _ in 0..epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(self.config.batch) {
                self.step_batch(ds, chunk);
            }
        }
        Ok(())
    }

    /// Forward pass storing activations; returns (per-stage conv inputs,
    /// pooled vector, dense activations, logit).
    #[allow(clippy::type_complexity)]
    fn forward(&self, x: &[f64]) -> (Vec<Tensor>, Vec<f64>, Vec<Vec<f64>>, f64) {
        // Conv encoder.
        let mut act: Tensor = vec![x.to_vec()];
        let mut conv_inputs: Vec<Tensor> = Vec::with_capacity(self.conv_w.len());
        for (stage, spec) in self.config.conv.iter().enumerate() {
            conv_inputs.push(act.clone());
            let in_ch = act.len();
            let t_in = act[0].len();
            let t_out = conv_out_len(t_in, spec.kernel, spec.stride);
            let w = &self.conv_w[stage].w;
            let b = &self.conv_b[stage].w;
            let mut next: Tensor = vec![vec![0.0; t_out]; spec.out_channels];
            for (o, row) in next.iter_mut().enumerate() {
                for (t, out_v) in row.iter_mut().enumerate() {
                    let mut acc = b[o];
                    let base = t * spec.stride;
                    for (i, in_row) in act.iter().enumerate() {
                        let w_off = (o * in_ch + i) * spec.kernel;
                        for k in 0..spec.kernel {
                            acc += w[w_off + k] * in_row[base + k];
                        }
                    }
                    // ReLU fused here.
                    *out_v = acc.max(0.0);
                }
            }
            act = next;
        }

        // Global average pool (or identity for MLP mode).
        let pooled: Vec<f64> = if self.config.conv.is_empty() {
            act[0].clone()
        } else {
            act.iter()
                .map(|row| row.iter().sum::<f64>() / row.len() as f64)
                .collect()
        };

        // Dense head with ReLU between layers; final layer linear (logit).
        let mut dense_acts: Vec<Vec<f64>> = vec![pooled.clone()];
        let n_layers = self.dense_w.len();
        for (layer, (wp, bp)) in self.dense_w.iter().zip(self.dense_b.iter()).enumerate() {
            let input = dense_acts.last().expect("at least the pooled input");
            let in_dim = self.dense_dims[layer];
            let out_dim = self.dense_dims[layer + 1];
            let mut out = vec![0.0; out_dim];
            for (o, out_v) in out.iter_mut().enumerate() {
                let mut acc = bp.w[o];
                let off = o * in_dim;
                for (i, v) in input.iter().enumerate() {
                    acc += wp.w[off + i] * v;
                }
                *out_v = if layer + 1 < n_layers {
                    acc.max(0.0)
                } else {
                    acc
                };
            }
            dense_acts.push(out);
        }
        let logit = dense_acts.last().expect("final layer")[0];
        (conv_inputs, pooled, dense_acts, logit)
    }

    #[allow(clippy::needless_range_loop)] // index-heavy backprop reads clearer with explicit indices
    fn step_batch(&mut self, ds: &Dataset, indices: &[usize]) {
        // Gradient accumulators mirroring the parameter blocks.
        let mut g_conv_w: Vec<Vec<f64>> =
            self.conv_w.iter().map(|p| vec![0.0; p.w.len()]).collect();
        let mut g_conv_b: Vec<Vec<f64>> =
            self.conv_b.iter().map(|p| vec![0.0; p.w.len()]).collect();
        let mut g_dense_w: Vec<Vec<f64>> =
            self.dense_w.iter().map(|p| vec![0.0; p.w.len()]).collect();
        let mut g_dense_b: Vec<Vec<f64>> =
            self.dense_b.iter().map(|p| vec![0.0; p.w.len()]).collect();

        let scale = 1.0 / indices.len() as f64;
        for &idx in indices {
            let (x, label) = ds.sample(idx);
            let (conv_inputs, _pooled, dense_acts, logit) = self.forward(x);
            let y = label as f64;
            let p = 1.0 / (1.0 + (-logit).exp());
            // dL/dlogit for BCE-with-logits.
            let mut delta = vec![(p - y) * scale];

            // Backprop dense layers.
            for layer in (0..self.dense_w.len()).rev() {
                let input = &dense_acts[layer];
                let output = &dense_acts[layer + 1];
                let in_dim = self.dense_dims[layer];
                let is_last = layer + 1 == self.dense_w.len();
                // ReLU gate on the output (not for the final logit).
                let gated: Vec<f64> = if is_last {
                    delta.clone()
                } else {
                    delta
                        .iter()
                        .zip(output.iter())
                        .map(|(d, o)| if *o > 0.0 { *d } else { 0.0 })
                        .collect()
                };
                let mut d_in = vec![0.0; in_dim];
                for (o, d) in gated.iter().enumerate() {
                    g_dense_b[layer][o] += d;
                    let off = o * in_dim;
                    for (i, v) in input.iter().enumerate() {
                        g_dense_w[layer][off + i] += d * v;
                        d_in[i] += d * self.dense_w[layer].w[off + i];
                    }
                }
                delta = d_in;
            }

            if self.config.conv.is_empty() {
                continue;
            }

            // Un-pool: distribute the per-channel gradient over time.
            // We need the conv output shapes; recompute from the last conv
            // input tensor.
            let mut d_out: Tensor;
            {
                // Recompute final conv activation lengths from the stored
                // inputs of the last stage.
                let last = self.config.conv.len() - 1;
                let spec = self.config.conv[last];
                let t_out = conv_out_len(conv_inputs[last][0].len(), spec.kernel, spec.stride);
                d_out = (0..spec.out_channels)
                    .map(|ch| vec![delta[ch] / t_out as f64; t_out])
                    .collect();
            }

            // Backprop conv stages in reverse. We must re-run each stage
            // forward to know the pre-ReLU sign; instead we recompute the
            // stage output from its stored input (cheap relative to training
            // as a whole and keeps memory simple).
            for stage in (0..self.config.conv.len()).rev() {
                let spec = self.config.conv[stage];
                let input = &conv_inputs[stage];
                let in_ch = input.len();
                let t_out = d_out[0].len();
                // Recompute post-ReLU output for gating.
                let w = &self.conv_w[stage].w;
                let b = &self.conv_b[stage].w;
                let mut d_in: Tensor = vec![vec![0.0; input[0].len()]; in_ch];
                for o in 0..spec.out_channels {
                    for t in 0..t_out {
                        let base = t * spec.stride;
                        // pre-activation
                        let mut acc = b[o];
                        for (i, in_row) in input.iter().enumerate() {
                            let w_off = (o * in_ch + i) * spec.kernel;
                            for k in 0..spec.kernel {
                                acc += w[w_off + k] * in_row[base + k];
                            }
                        }
                        if acc <= 0.0 {
                            continue; // ReLU gate closed
                        }
                        let d = d_out[o][t];
                        if d == 0.0 {
                            continue;
                        }
                        g_conv_b[stage][o] += d;
                        for (i, in_row) in input.iter().enumerate() {
                            let w_off = (o * in_ch + i) * spec.kernel;
                            for k in 0..spec.kernel {
                                g_conv_w[stage][w_off + k] += d * in_row[base + k];
                                d_in[i][base + k] += d * w[w_off + k];
                            }
                        }
                    }
                }
                d_out = d_in;
            }
        }

        // Adam updates.
        self.adam_t += 1;
        let lr = self.config.learning_rate;
        let t = self.adam_t;
        for (p, g) in self.conv_w.iter_mut().zip(g_conv_w.iter()) {
            p.adam_step(g, lr, t);
        }
        for (p, g) in self.conv_b.iter_mut().zip(g_conv_b.iter()) {
            p.adam_step(g, lr, t);
        }
        for (p, g) in self.dense_w.iter_mut().zip(g_dense_w.iter()) {
            p.adam_step(g, lr, t);
        }
        for (p, g) in self.dense_b.iter_mut().zip(g_dense_b.iter()) {
            p.adam_step(g, lr, t);
        }
    }

    /// Class-1 probability for one input.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        let logit = self.forward(x).3;
        1.0 / (1.0 + (-logit).exp())
    }

    // ---- read-only views for the quantized backend (crate::quant) ----

    /// The convolutional encoder stages.
    pub(crate) fn conv_specs(&self) -> &[ConvSpec] {
        &self.config.conv
    }

    /// Flattened `[out][in][k]` weights of conv stage `stage`.
    pub(crate) fn conv_weights(&self, stage: usize) -> &[f64] {
        &self.conv_w[stage].w
    }

    /// Per-output-channel biases of conv stage `stage`.
    pub(crate) fn conv_biases(&self, stage: usize) -> &[f64] {
        &self.conv_b[stage].w
    }

    /// Flattened `[out][in]` weights of dense layer `layer`.
    pub(crate) fn dense_weights(&self, layer: usize) -> &[f64] {
        &self.dense_w[layer].w
    }

    /// Biases of dense layer `layer`.
    pub(crate) fn dense_biases(&self, layer: usize) -> &[f64] {
        &self.dense_b[layer].w
    }

    /// Dense layer widths, input through final logit.
    pub(crate) fn dense_dims(&self) -> &[usize] {
        &self.dense_dims
    }

    /// The expected input width in samples.
    pub(crate) fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Raw decision logit — the quantized backend's accuracy gates compare
    /// against this rather than the squashed probability.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn logit(&self, x: &[f64]) -> f64 {
        self.forward(x).3
    }

    /// Max-abs of the input to each conv stage for one sample (entry 0 is
    /// the raw input, entry `s` the output of conv stage `s - 1`). This is
    /// the calibration hook for [`crate::quant`]'s static activation scales.
    pub(crate) fn conv_input_max_abs(&self, x: &[f64]) -> Vec<f64> {
        let (conv_inputs, _, _, _) = self.forward(x);
        conv_inputs
            .iter()
            .map(|t| {
                t.iter()
                    .flat_map(|row| row.iter())
                    .fold(0.0f64, |m, &v| m.max(v.abs()))
            })
            .collect()
    }
}

impl Classifier for NeuralNet {
    fn predict(&self, x: &[f64]) -> usize {
        usize::from(self.predict_proba(x) >= 0.5)
    }

    fn decision_score(&self, x: &[f64]) -> f64 {
        self.forward(x).3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_dsp::rng::Rng;

    /// Binary problem on short "waveforms": class 1 = high-frequency
    /// alternation, class 0 = slow ramp. Mimics (in miniature) the spectral
    /// discrimination task of liveness detection.
    fn waveforms(n_per: usize, seed: u64, len: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(len);
        for _ in 0..n_per {
            let fast: Vec<f64> = (0..len)
                .map(|t| if t % 2 == 0 { 1.0 } else { -1.0 } * (0.8 + 0.4 * rng.gen::<f64>()))
                .collect();
            ds.push(fast, 1).unwrap();
            let phase: f64 = rng.gen::<f64>() * std::f64::consts::TAU;
            let slow: Vec<f64> = (0..len)
                .map(|t| (t as f64 * 0.05 + phase).sin() * (0.8 + 0.4 * rng.gen::<f64>()))
                .collect();
            ds.push(slow, 0).unwrap();
        }
        ds
    }

    fn tiny_conv_config() -> NeuralNetConfig {
        NeuralNetConfig {
            conv: vec![
                ConvSpec {
                    out_channels: 4,
                    kernel: 8,
                    stride: 4,
                },
                ConvSpec {
                    out_channels: 8,
                    kernel: 4,
                    stride: 2,
                },
            ],
            hidden: vec![8],
            learning_rate: 5e-3,
            epochs: 30,
            batch: 8,
            seed: 3,
        }
    }

    #[test]
    fn conv_net_learns_waveform_classes() {
        let train = waveforms(30, 1, 128);
        let test = waveforms(30, 2, 128);
        let net = NeuralNet::fit(&train, &tiny_conv_config()).unwrap();
        let preds = net.predict_batch(test.features());
        let acc = crate::metrics::accuracy(test.labels(), &preds);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn mlp_learns_linear_problem() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ds = Dataset::new(3);
        for _ in 0..80 {
            let x: Vec<f64> = (0..3).map(|_| ht_dsp::rng::gaussian(&mut rng)).collect();
            let label = usize::from(x[0] + 0.5 * x[1] - x[2] > 0.0);
            ds.push(x, label).unwrap();
        }
        let mut cfg = NeuralNetConfig::mlp(vec![8]);
        cfg.epochs = 120;
        let net = NeuralNet::fit(&ds, &cfg).unwrap();
        let preds = net.predict_batch(ds.features());
        let acc = crate::metrics::accuracy(ds.labels(), &preds);
        assert!(acc > 0.9, "training accuracy {acc}");
    }

    #[test]
    fn probabilities_are_probabilities() {
        let train = waveforms(10, 5, 64);
        let mut cfg = tiny_conv_config();
        cfg.epochs = 5;
        let net = NeuralNet::fit(&train, &cfg).unwrap();
        for i in 0..train.len() {
            let p = net.predict_proba(train.sample(i).0);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn fit_more_improves_on_new_distribution() {
        // Train on easy data, then adapt to a shifted distribution with a
        // few extra epochs (the incremental-learning protocol).
        let train = waveforms(20, 6, 64);
        let mut cfg = tiny_conv_config();
        cfg.epochs = 15;
        let mut net = NeuralNet::fit(&train, &cfg).unwrap();

        // Shifted distribution: attenuated amplitudes.
        let shifted_train = {
            let base = waveforms(20, 7, 64);
            let feats: Vec<Vec<f64>> = base
                .features()
                .iter()
                .map(|f| f.iter().map(|v| v * 0.2).collect())
                .collect();
            Dataset::from_parts(feats, base.labels().to_vec()).unwrap()
        };
        let shifted_test = {
            let base = waveforms(20, 8, 64);
            let feats: Vec<Vec<f64>> = base
                .features()
                .iter()
                .map(|f| f.iter().map(|v| v * 0.2).collect())
                .collect();
            Dataset::from_parts(feats, base.labels().to_vec()).unwrap()
        };
        let before = crate::metrics::accuracy(
            shifted_test.labels(),
            &net.predict_batch(shifted_test.features()),
        );
        net.fit_more(&shifted_train, 15).unwrap();
        let after = crate::metrics::accuracy(
            shifted_test.labels(),
            &net.predict_batch(shifted_test.features()),
        );
        assert!(after >= before, "before {before}, after {after}");
        assert!(after > 0.8, "after adaptation {after}");
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let ds = waveforms(5, 9, 16);
        // Conv kernel bigger than the input.
        let bad = NeuralNetConfig {
            conv: vec![ConvSpec {
                out_channels: 2,
                kernel: 64,
                stride: 8,
            }],
            hidden: vec![4],
            learning_rate: 1e-3,
            epochs: 1,
            batch: 4,
            seed: 1,
        };
        assert!(NeuralNet::fit(&ds, &bad).is_err());
        let mut zero_epochs = tiny_conv_config();
        zero_epochs.epochs = 0;
        assert!(NeuralNet::fit(&ds, &zero_epochs).is_err());
        assert!(NeuralNet::fit(&Dataset::new(4), &tiny_conv_config()).is_err());
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let ds = waveforms(8, 10, 64);
        let mut cfg = tiny_conv_config();
        cfg.epochs = 3;
        let a = NeuralNet::fit(&ds, &cfg).unwrap();
        let b = NeuralNet::fit(&ds, &cfg).unwrap();
        let x = ds.sample(0).0;
        assert_eq!(a.predict_proba(x), b.predict_proba(x));
    }

    #[test]
    fn dimension_mismatch_in_fit_more_is_rejected() {
        let ds = waveforms(5, 11, 64);
        let mut cfg = tiny_conv_config();
        cfg.epochs = 1;
        let mut net = NeuralNet::fit(&ds, &cfg).unwrap();
        let other = waveforms(5, 12, 32);
        assert!(net.fit_more(&other, 1).is_err());
    }
}
