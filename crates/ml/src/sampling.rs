//! Minority up-sampling: SMOTE (Chawla et al. 2002) and ADASYN (He et al.
//! 2008).
//!
//! The cross-user experiment (§IV-B14) has imbalanced classes — facing
//! orientations are the minority — and the paper compares SMOTE against
//! ADASYN, selecting ADASYN "for its superior performance".

use crate::dataset::Dataset;
use crate::MlError;
use ht_dsp::rng::Rng;

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Indices of the `k` nearest neighbours of `x` among `pool` (excluding an
/// optional `skip` index into `pool`).
fn knn_indices(pool: &[&[f64]], x: &[f64], k: usize, skip: Option<usize>) -> Vec<usize> {
    let mut d: Vec<(f64, usize)> = pool
        .iter()
        .enumerate()
        .filter(|(i, _)| Some(*i) != skip)
        .map(|(i, p)| (sq_dist(p, x), i))
        .collect();
    d.sort_by(|a, b| a.0.total_cmp(&b.0));
    d.truncate(k);
    d.into_iter().map(|(_, i)| i).collect()
}

fn interpolate<R: Rng>(rng: &mut R, a: &[f64], b: &[f64]) -> Vec<f64> {
    let t: f64 = rng.gen();
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| x + t * (y - x))
        .collect()
}

fn minority_class(ds: &Dataset) -> Result<(usize, usize), MlError> {
    let counts = ds.class_counts();
    if counts.len() != 2 {
        return Err(MlError::InvalidData(format!(
            "up-sampling expects a binary dataset, found {} classes",
            counts.len()
        )));
    }
    let (minority, min_count) = counts
        .iter()
        .min_by_key(|(_, c)| *c)
        .copied()
        .expect("two classes present");
    let (_, max_count) = counts
        .iter()
        .max_by_key(|(_, c)| *c)
        .copied()
        .expect("two classes present");
    if min_count < 2 {
        return Err(MlError::Degenerate(
            "minority class needs at least 2 samples to interpolate".into(),
        ));
    }
    Ok((minority, max_count - min_count))
}

/// SMOTE: synthesizes minority samples by interpolating between each
/// minority sample and one of its `k` nearest minority neighbours, until the
/// classes are balanced. Returns a new dataset containing the original
/// samples plus the synthetic ones.
///
/// # Errors
///
/// Returns [`MlError::InvalidData`] for non-binary data and
/// [`MlError::Degenerate`] when the minority class has fewer than 2 samples.
pub fn smote<R: Rng>(ds: &Dataset, k: usize, rng: &mut R) -> Result<Dataset, MlError> {
    let (minority, deficit) = minority_class(ds)?;
    let minority_rows: Vec<&[f64]> = ds
        .features()
        .iter()
        .zip(ds.labels())
        .filter(|(_, &l)| l == minority)
        .map(|(f, _)| f.as_slice())
        .collect();
    let k = k.min(minority_rows.len() - 1).max(1);

    let mut out = ds.clone();
    for gen_i in 0..deficit {
        let base = gen_i % minority_rows.len();
        let neighbours = knn_indices(&minority_rows, minority_rows[base], k, Some(base));
        let pick = neighbours[rng.gen_range(0..neighbours.len())];
        let synth = interpolate(rng, minority_rows[base], minority_rows[pick]);
        out.push(synth, minority)?;
    }
    Ok(out)
}

/// ADASYN: like SMOTE but adaptively generates *more* synthetic samples
/// around minority points whose neighbourhoods are dominated by the majority
/// class (the hard-to-learn regions).
///
/// # Errors
///
/// Same conditions as [`smote`].
pub fn adasyn<R: Rng>(ds: &Dataset, k: usize, rng: &mut R) -> Result<Dataset, MlError> {
    let (minority, deficit) = minority_class(ds)?;
    if deficit == 0 {
        return Ok(ds.clone());
    }
    let minority_rows: Vec<&[f64]> = ds
        .features()
        .iter()
        .zip(ds.labels())
        .filter(|(_, &l)| l == minority)
        .map(|(f, _)| f.as_slice())
        .collect();
    let all_rows: Vec<&[f64]> = ds.features().iter().map(|f| f.as_slice()).collect();
    let k_all = k.min(all_rows.len() - 1).max(1);
    let k_min = k.min(minority_rows.len() - 1).max(1);

    // Hardness ratio r_i: fraction of majority samples among the k nearest
    // neighbours (searched over the whole dataset).
    let mut hardness = Vec::with_capacity(minority_rows.len());
    for (mi, row) in minority_rows.iter().enumerate() {
        // Map this minority row back to its global index to exclude itself.
        let global = ds
            .features()
            .iter()
            .position(|f| std::ptr::eq(f.as_slice().as_ptr(), row.as_ptr()))
            .unwrap_or(mi);
        let nb = knn_indices(&all_rows, row, k_all, Some(global));
        let majority_nb = nb.iter().filter(|&&i| ds.labels()[i] != minority).count();
        hardness.push(majority_nb as f64 / k_all as f64);
    }
    let total: f64 = hardness.iter().sum();
    // Degenerate: perfectly separated data — fall back to uniform SMOTE.
    if total <= 0.0 {
        return smote(ds, k, rng);
    }

    // Allocate the deficit proportionally to hardness.
    let mut quotas: Vec<usize> = hardness
        .iter()
        .map(|h| ((h / total) * deficit as f64).round() as usize)
        .collect();
    // Fix rounding drift.
    let n_quotas = quotas.len();
    let mut allocated: usize = quotas.iter().sum();
    let mut i = 0usize;
    while allocated < deficit {
        quotas[i % n_quotas] += 1;
        allocated += 1;
        i += 1;
    }
    while allocated > deficit {
        if quotas[i % n_quotas] > 0 {
            quotas[i % n_quotas] -= 1;
            allocated -= 1;
        }
        i += 1;
    }

    let mut out = ds.clone();
    for (base, &q) in quotas.iter().enumerate() {
        let neighbours = knn_indices(&minority_rows, minority_rows[base], k_min, Some(base));
        for _ in 0..q {
            let pick = neighbours[rng.gen_range(0..neighbours.len())];
            let synth = interpolate(rng, minority_rows[base], minority_rows[pick]);
            out.push(synth, minority)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_dsp::rng::{SeedableRng, StdRng};

    /// 4 minority (class 1) vs 12 majority (class 0) samples.
    fn imbalanced(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(2);
        for _ in 0..4 {
            ds.push(
                vec![
                    2.0 + 0.3 * ht_dsp::rng::gaussian(&mut rng),
                    2.0 + 0.3 * ht_dsp::rng::gaussian(&mut rng),
                ],
                1,
            )
            .unwrap();
        }
        for _ in 0..12 {
            ds.push(
                vec![
                    -1.0 + 1.0 * ht_dsp::rng::gaussian(&mut rng),
                    -1.0 + 1.0 * ht_dsp::rng::gaussian(&mut rng),
                ],
                0,
            )
            .unwrap();
        }
        ds
    }

    #[test]
    fn smote_balances_classes() {
        let ds = imbalanced(1);
        let mut rng = StdRng::seed_from_u64(2);
        let up = smote(&ds, 3, &mut rng).unwrap();
        assert_eq!(up.class_counts(), vec![(0, 12), (1, 12)]);
        // Originals preserved.
        assert_eq!(&up.features()[..16], ds.features());
    }

    #[test]
    fn adasyn_balances_classes() {
        let ds = imbalanced(3);
        let mut rng = StdRng::seed_from_u64(4);
        let up = adasyn(&ds, 3, &mut rng).unwrap();
        assert_eq!(up.class_counts(), vec![(0, 12), (1, 12)]);
    }

    #[test]
    fn synthetic_samples_lie_in_the_minority_hull() {
        let ds = imbalanced(5);
        let mut rng = StdRng::seed_from_u64(6);
        let up = smote(&ds, 3, &mut rng).unwrap();
        // Minority cluster is around (2, 2) with sd 0.3: synthetic points
        // must stay nearby (interpolation cannot leave the convex hull).
        for i in ds.len()..up.len() {
            let (f, l) = up.sample(i);
            assert_eq!(l, 1);
            assert!(f[0] > 0.5 && f[1] > 0.5, "synthetic point {f:?} escaped");
        }
    }

    #[test]
    fn adasyn_focuses_on_boundary_points() {
        // Construct minority points: three deep inside their cluster and one
        // close to the majority; the boundary point should receive the most
        // synthetic neighbours.
        let mut ds = Dataset::new(1);
        for v in [10.0, 10.2, 10.4] {
            ds.push(vec![v], 1).unwrap();
        }
        ds.push(vec![1.0], 1).unwrap(); // boundary minority point
        for v in [0.0, 0.2, 0.4, 0.6, 0.8, -0.2, -0.4, -0.6, -0.8, -1.0] {
            ds.push(vec![v], 0).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(7);
        let up = adasyn(&ds, 3, &mut rng).unwrap();
        // Count synthetic points near the boundary (x < 6) vs deep (x > 6).
        let synth = &up.features()[ds.len()..];
        let near_boundary = synth.iter().filter(|f| f[0] < 6.0).count();
        let deep = synth.len() - near_boundary;
        assert!(
            near_boundary >= deep,
            "boundary {near_boundary} vs deep {deep}"
        );
    }

    #[test]
    fn balanced_input_is_returned_unchanged_by_adasyn() {
        let mut ds = Dataset::new(1);
        for v in [0.0, 1.0] {
            ds.push(vec![v], 0).unwrap();
            ds.push(vec![v + 5.0], 1).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(8);
        let up = adasyn(&ds, 1, &mut rng).unwrap();
        assert_eq!(up.len(), ds.len());
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        let mut rng = StdRng::seed_from_u64(9);
        // Single minority sample.
        let mut ds = Dataset::new(1);
        ds.push(vec![0.0], 1).unwrap();
        ds.push(vec![1.0], 0).unwrap();
        ds.push(vec![2.0], 0).unwrap();
        assert!(smote(&ds, 3, &mut rng).is_err());
        // Three classes.
        let mut multi = Dataset::new(1);
        for (v, l) in [(0.0, 0), (1.0, 1), (2.0, 2)] {
            multi.push(vec![v], l).unwrap();
        }
        assert!(adasyn(&multi, 3, &mut rng).is_err());
    }
}
