//! Int8 post-training quantization for the decision-path models.
//!
//! The serving hot path runs two models per wake decision: the
//! "wav2vec2-mini" conv1d liveness network ([`crate::nn`]) and the RBF-SVM
//! orientation classifier ([`crate::svm`]). Both are quantized here with
//! **static symmetric per-layer scales** calibrated offline from training
//! captures:
//!
//! * weights: `scale_w = max|w| / 127`, stored as `i8`,
//! * activations: `scale_a = max|a| / 127` where `max|a|` is taken over the
//!   f64 reference forward passes of the calibration set,
//! * accumulation in `i32` (the largest dot product in the mini encoder is
//!   `in_ch · kernel = 128` terms of at most `127 · 127`, ≈ 2.1 M ≪
//!   `i32::MAX`; the SVM distance is `dim` terms of at most `254²`).
//!
//! Biases, the global-average pool, and the dense head stay in f64 — they
//! are O(channels), not O(T·channels), so quantizing them would buy nothing
//! and cost accuracy. The f64 reference path in [`crate::nn`] /
//! [`crate::svm`] is untouched and remains the byte-stable default;
//! quantized inference is opt-in via `ht_dsp::QuantMode::Int8` at the
//! pipeline layer.
//!
//! Inference is allocation-free after warmup: [`QuantizedNet::forward_with`]
//! works over a caller-held (or thread-local) [`QuantScratch`] of flat
//! ping/pong buffers.

use crate::nn::{conv_out_len, NeuralNet};
use crate::svm::Svm;
use crate::{Classifier, MlError};
use std::cell::RefCell;

pub mod simd;

pub use simd::{avx2_available, dist2_i8_avx2, dot_i8_avx2};

/// Symmetric scale for values bounded by `max_abs`, mapping onto `[-127, 127]`.
///
/// An all-zero tensor gets scale 1.0 — every quantized value is 0 either way
/// and the dequantization multiplier stays finite.
fn scale_for(max_abs: f64) -> f64 {
    if max_abs > 0.0 {
        max_abs / 127.0
    } else {
        1.0
    }
}

/// Quantizes one value with round-to-nearest and saturation to `[-127, 127]`.
#[inline]
fn quantize_one(v: f64, scale: f64) -> i8 {
    (v / scale).round().clamp(-127.0, 127.0) as i8
}

/// Hot-path variant of [`quantize_one`] taking the precomputed reciprocal:
/// a multiply pipelines far better than a divide when applied to thousands
/// of samples per forward pass. The ≤ 1 ulp pre-rounding difference versus
/// the divide can move a borderline value by one quantum — within the
/// quantization error budget, and deterministic for a given scale.
#[inline]
fn quantize_inv(v: f64, inv_scale: f64) -> i8 {
    (v * inv_scale).round().clamp(-127.0, 127.0) as i8
}

fn quantize_into(values: &[f64], scale: f64, out: &mut Vec<i8>) {
    let inv = 1.0 / scale;
    out.clear();
    out.extend(values.iter().map(|&v| quantize_inv(v, inv)));
}

/// Width of the manually unrolled i32 accumulator banks below: eight lanes
/// fill a 256-bit integer vector, and every dot product in the mini encoder
/// (`in_ch · kernel` ∈ {16, 64, 128}) divides evenly into them.
const DOT_LANES: usize = 8;

/// Flat i8·i8 → i32 dot product over [`DOT_LANES`] independent
/// accumulators, so the compiler widens each chunk to one vector
/// multiply-add instead of a serial scalar chain. Portable reference for
/// the [`simd`] backends and the fallback on machines without AVX2; the
/// hot path dispatches through [`simd::dot_i8`].
#[inline]
pub fn dot_i8_scalar(w: &[i8], x: &[i8]) -> i32 {
    let mut lanes = [0i32; DOT_LANES];
    let wc = w.chunks_exact(DOT_LANES);
    let xc = x.chunks_exact(DOT_LANES);
    let (wt, xt) = (wc.remainder(), xc.remainder());
    for (cw, cx) in wc.zip(xc) {
        for l in 0..DOT_LANES {
            lanes[l] += cw[l] as i32 * cx[l] as i32;
        }
    }
    let mut acc: i32 = lanes.iter().sum();
    for (&a, &b) in wt.iter().zip(xt) {
        acc += a as i32 * b as i32;
    }
    acc
}

/// Flat squared Euclidean distance between i8 vectors, same lane structure
/// as [`dot_i8_scalar`]. Portable reference; the hot path dispatches
/// through [`simd::dist2_i8`].
#[inline]
pub fn dist2_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    let mut lanes = [0i32; DOT_LANES];
    let ac = a.chunks_exact(DOT_LANES);
    let bc = b.chunks_exact(DOT_LANES);
    let (at, bt) = (ac.remainder(), bc.remainder());
    for (ca, cb) in ac.zip(bc) {
        for l in 0..DOT_LANES {
            let d = ca[l] as i32 - cb[l] as i32;
            lanes[l] += d * d;
        }
    }
    let mut acc: i32 = lanes.iter().sum();
    for (&p, &q) in at.iter().zip(bt) {
        let d = p as i32 - q as i32;
        acc += d * d;
    }
    acc
}

/// One quantized conv1d stage with its static scales and fixed geometry.
#[derive(Debug, Clone, PartialEq)]
struct QuantConvStage {
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    /// Input / output time lengths (fixed because the network input width is).
    t_in: usize,
    t_out: usize,
    /// `[out][in][k]`-flattened weights, same layout as the f64 stage.
    w: Vec<i8>,
    w_scale: f64,
    /// f64 per-output-channel biases.
    b: Vec<f64>,
    /// Scale of this stage's (ReLU'd) output activations. Unused for the
    /// last stage, whose output stays f64 for pooling.
    out_scale: f64,
}

/// Flat reusable buffers for [`QuantizedNet::forward_with`].
///
/// All vectors grow to their high-water mark on the first forward pass and
/// are only `resize`d (never reallocated) afterwards, so steady-state
/// inference performs no heap allocation.
#[derive(Debug, Default)]
pub struct QuantScratch {
    /// Quantized activations, ping/pong across conv stages, flat `[ch][t]`.
    q_in: Vec<i8>,
    q_out: Vec<i8>,
    /// Gathered conv patches, flat `[t][in_ch · kernel]`: one contiguous row
    /// per output position, in the same `[in][k]` order as a weight row, so
    /// every conv output is one flat [`simd::dot_i8`] over contiguous memory.
    patches: Vec<i8>,
    /// f64 output of the last conv stage, flat `[ch][t]`.
    f_last: Vec<f64>,
    /// Per-channel pooled means.
    pooled: Vec<f64>,
    /// Dense-head ping/pong activations.
    dense_a: Vec<f64>,
    dense_b: Vec<f64>,
}

impl QuantScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> QuantScratch {
        QuantScratch::default()
    }

    /// Drops buffered contents but keeps capacity. A reset scratch produces
    /// bit-identical results to a fresh one.
    pub fn reset(&mut self) {
        self.q_in.clear();
        self.q_out.clear();
        self.patches.clear();
        self.f_last.clear();
        self.pooled.clear();
        self.dense_a.clear();
        self.dense_b.clear();
    }
}

thread_local! {
    static NET_SCRATCH: RefCell<QuantScratch> = RefCell::new(QuantScratch::new());
    static SVM_SCRATCH: RefCell<Vec<i8>> = const { RefCell::new(Vec::new()) };
}

/// Int8-quantized view of a trained conv1d [`NeuralNet`].
///
/// Built offline with [`QuantizedNet::from_net`] from the f64 model plus a
/// calibration set; the original network is not modified and keeps serving
/// the byte-stable reference path.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedNet {
    stages: Vec<QuantConvStage>,
    input_scale: f64,
    /// Largest flat activation size across stages — both ping/pong buffers
    /// are presized to this so one call reaches the scratch high-water mark.
    max_flat: usize,
    /// f64 dense head copied from the reference net (`[out][in]` flat).
    dense_w: Vec<Vec<f64>>,
    dense_b: Vec<Vec<f64>>,
    dense_dims: Vec<usize>,
    input_dim: usize,
}

impl QuantizedNet {
    /// Quantizes `net` using `calib` to fix the static activation scales.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidParameter`] for an MLP-mode net (no conv
    /// encoder — nothing worth quantizing) and [`MlError::InvalidData`] for
    /// an empty calibration set or calibration rows of the wrong width.
    pub fn from_net(net: &NeuralNet, calib: &[&[f64]]) -> Result<QuantizedNet, MlError> {
        let specs = net.conv_specs();
        if specs.is_empty() {
            return Err(MlError::InvalidParameter(
                "int8 quantization targets the conv encoder; this net has none".into(),
            ));
        }
        if calib.is_empty() {
            return Err(MlError::InvalidData("empty calibration set".into()));
        }
        for row in calib {
            if row.len() != net.input_dim() {
                return Err(MlError::InvalidData(format!(
                    "calibration row has {} samples, network expects {}",
                    row.len(),
                    net.input_dim()
                )));
            }
        }

        // Activation ranges from the f64 reference forwards: act_max[s] is
        // the max-abs input to conv stage s (s = 0 → the raw capture).
        let mut act_max = vec![0.0f64; specs.len()];
        for row in calib {
            for (m, v) in act_max.iter_mut().zip(net.conv_input_max_abs(row)) {
                *m = m.max(v);
            }
        }
        let input_scale = scale_for(act_max[0]);

        let mut stages = Vec::with_capacity(specs.len());
        let mut in_ch = 1usize;
        let mut t_in = net.input_dim();
        for (s, spec) in specs.iter().enumerate() {
            let w = net.conv_weights(s);
            let w_max = w.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            let w_scale = scale_for(w_max);
            let t_out = conv_out_len(t_in, spec.kernel, spec.stride);
            stages.push(QuantConvStage {
                in_ch,
                out_ch: spec.out_channels,
                kernel: spec.kernel,
                stride: spec.stride,
                t_in,
                t_out,
                w: w.iter().map(|&v| quantize_one(v, w_scale)).collect(),
                w_scale,
                b: net.conv_biases(s).to_vec(),
                out_scale: act_max.get(s + 1).copied().map(scale_for).unwrap_or(1.0),
            });
            in_ch = spec.out_channels;
            t_in = t_out;
        }

        let n_dense = net.dense_dims().len() - 1;
        let max_flat = stages
            .iter()
            .map(|st| st.out_ch * st.t_out)
            .fold(net.input_dim(), usize::max);
        Ok(QuantizedNet {
            stages,
            input_scale,
            max_flat,
            dense_w: (0..n_dense)
                .map(|l| net.dense_weights(l).to_vec())
                .collect(),
            dense_b: (0..n_dense).map(|l| net.dense_biases(l).to_vec()).collect(),
            dense_dims: net.dense_dims().to_vec(),
            input_dim: net.input_dim(),
        })
    }

    /// The expected input width in samples.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Int8 forward pass over caller-held scratch, returning the logit.
    /// Allocation-free once `scratch` has reached its high-water size.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from [`QuantizedNet::input_dim`] — the
    /// pipeline validates capture width before inference.
    pub fn forward_with(&self, x: &[f64], scratch: &mut QuantScratch) -> f64 {
        assert_eq!(
            x.len(),
            self.input_dim,
            "quantized net expects input dim {}",
            self.input_dim
        );
        // Presize both ping/pong buffers so the swap never exposes a
        // below-high-water buffer on the next call.
        scratch.q_in.resize(self.max_flat, 0);
        scratch.q_out.resize(self.max_flat, 0);
        quantize_into(x, self.input_scale, &mut scratch.q_in);

        let n_stages = self.stages.len();
        for (s, st) in self.stages.iter().enumerate() {
            let is_last = s + 1 == n_stages;
            let in_scale = if s == 0 {
                self.input_scale
            } else {
                self.stages[s - 1].out_scale
            };
            // One multiplier folds both scales back to real units.
            let deq = st.w_scale * in_scale;
            if is_last {
                scratch.f_last.clear();
                scratch.f_last.resize(st.out_ch * st.t_out, 0.0);
            } else {
                scratch.q_out.clear();
                scratch.q_out.resize(st.out_ch * st.t_out, 0);
            }
            // Gather each output position's receptive field into one
            // contiguous row (im2col), ordered `[in][k]` to match a weight
            // row, so the channel loop below is a single flat dot product
            // per output instead of `in_ch` strided slices.
            let patch_w = st.in_ch * st.kernel;
            scratch.patches.clear();
            for t in 0..st.t_out {
                let base = t * st.stride;
                for i in 0..st.in_ch {
                    scratch
                        .patches
                        .extend_from_slice(&scratch.q_in[i * st.t_in + base..][..st.kernel]);
                }
            }
            let inv_out = 1.0 / st.out_scale;
            for o in 0..st.out_ch {
                let row_off = o * st.t_out;
                let w_row = &st.w[o * patch_w..][..patch_w];
                for (t, patch) in scratch.patches.chunks_exact(patch_w).enumerate() {
                    let acc = simd::dot_i8(w_row, patch);
                    let v = (st.b[o] + acc as f64 * deq).max(0.0);
                    if is_last {
                        scratch.f_last[row_off + t] = v;
                    } else {
                        scratch.q_out[row_off + t] = quantize_inv(v, inv_out);
                    }
                }
            }
            if !is_last {
                std::mem::swap(&mut scratch.q_in, &mut scratch.q_out);
            }
        }

        // Global average pool per channel, then the f64 dense head — same
        // arithmetic order as the reference dense layers.
        let last = &self.stages[n_stages - 1];
        scratch.pooled.clear();
        for o in 0..last.out_ch {
            let row = &scratch.f_last[o * last.t_out..][..last.t_out];
            scratch
                .pooled
                .push(row.iter().sum::<f64>() / last.t_out as f64);
        }

        scratch.dense_a.clear();
        scratch.dense_a.extend_from_slice(&scratch.pooled);
        let n_layers = self.dense_w.len();
        for layer in 0..n_layers {
            let in_dim = self.dense_dims[layer];
            let out_dim = self.dense_dims[layer + 1];
            let (w, b) = (&self.dense_w[layer], &self.dense_b[layer]);
            scratch.dense_b.clear();
            for (o, &bias) in b.iter().enumerate().take(out_dim) {
                let mut acc = bias;
                let off = o * in_dim;
                for (i, v) in scratch.dense_a.iter().enumerate() {
                    acc += w[off + i] * v;
                }
                scratch.dense_b.push(if layer + 1 < n_layers {
                    acc.max(0.0)
                } else {
                    acc
                });
            }
            std::mem::swap(&mut scratch.dense_a, &mut scratch.dense_b);
        }
        scratch.dense_a[0]
    }

    /// Class-1 probability via a thread-local scratch.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        let logit = NET_SCRATCH.with(|s| self.forward_with(x, &mut s.borrow_mut()));
        1.0 / (1.0 + (-logit).exp())
    }
}

impl Classifier for QuantizedNet {
    fn predict(&self, x: &[f64]) -> usize {
        usize::from(self.predict_proba(x) >= 0.5)
    }

    fn decision_score(&self, x: &[f64]) -> f64 {
        self.predict_proba(x)
    }
}

/// Int8-quantized view of a trained RBF [`Svm`].
///
/// Support vectors and queries share one symmetric input scale calibrated
/// over the support vectors plus the calibration features, so the squared
/// distance accumulates exactly in `i32` and only the final
/// `exp(-γ · scale² · d²)` runs in f64.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedSvm {
    /// Flat `[sv][dim]` quantized support vectors.
    svs: Vec<i8>,
    dim: usize,
    coeffs: Vec<f64>,
    bias: f64,
    /// `γ · scale²` — the dequantized RBF exponent multiplier.
    gamma_q: f64,
    scale: f64,
}

impl QuantizedSvm {
    /// Quantizes `svm`, calibrating the shared input scale over its support
    /// vectors and `calib` feature rows.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidData`] for an empty calibration set or rows
    /// whose width differs from the support-vector dimension.
    pub fn from_svm(svm: &Svm, calib: &[&[f64]]) -> Result<QuantizedSvm, MlError> {
        if calib.is_empty() {
            return Err(MlError::InvalidData("empty calibration set".into()));
        }
        let svs = svm.support_vectors();
        let dim = svs[0].len();
        for row in calib {
            if row.len() != dim {
                return Err(MlError::InvalidData(format!(
                    "calibration row has {} features, SVM expects {dim}",
                    row.len()
                )));
            }
        }
        let max_abs = svs
            .iter()
            .flat_map(|sv| sv.iter())
            .chain(calib.iter().flat_map(|row| row.iter()))
            .fold(0.0f64, |m, &v| m.max(v.abs()));
        let scale = scale_for(max_abs);
        Ok(QuantizedSvm {
            svs: svs
                .iter()
                .flat_map(|sv| sv.iter().map(|&v| quantize_one(v, scale)))
                .collect(),
            dim,
            coeffs: svm.coeffs().to_vec(),
            bias: svm.bias(),
            gamma_q: svm.gamma() * scale * scale,
            scale,
        })
    }

    /// Decision score over caller-held scratch for the quantized query.
    /// Allocation-free once `scratch` has grown to the feature width.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the support-vector dimension — the
    /// orientation detector validates feature width before scoring.
    pub fn decision_score_with(&self, x: &[f64], scratch: &mut Vec<i8>) -> f64 {
        assert_eq!(x.len(), self.dim, "quantized SVM expects dim {}", self.dim);
        quantize_into(x, self.scale, scratch);
        let mut f = self.bias;
        for (sv, &a) in self.svs.chunks_exact(self.dim).zip(self.coeffs.iter()) {
            let d2 = simd::dist2_i8(sv, scratch);
            f += a * (-self.gamma_q * d2 as f64).exp();
        }
        f
    }
}

impl Classifier for QuantizedSvm {
    fn predict(&self, x: &[f64]) -> usize {
        usize::from(self.decision_score(x) >= 0.0)
    }

    fn decision_score(&self, x: &[f64]) -> f64 {
        SVM_SCRATCH.with(|s| self.decision_score_with(x, &mut s.borrow_mut()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::nn::{NeuralNet, NeuralNetConfig};
    use crate::svm::{Svm, SvmParams};
    use ht_dsp::rng::{SeedableRng, StdRng};

    /// A small conv net + dataset shaped like the liveness task: 1-D
    /// captures, two classes separated by amplitude envelope.
    fn toy_conv_net(input_dim: usize, seed: u64) -> (NeuralNet, Dataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(input_dim);
        for i in 0..60 {
            let label = i % 2;
            let amp = if label == 1 { 1.0 } else { 0.25 };
            let row: Vec<f64> = (0..input_dim)
                .map(|t| amp * (0.08 * t as f64).sin() + 0.05 * (ht_dsp::rng::gaussian(&mut rng)))
                .collect();
            ds.push(row, label).unwrap();
        }
        let config = NeuralNetConfig {
            conv: vec![
                crate::nn::ConvSpec {
                    out_channels: 4,
                    kernel: 8,
                    stride: 4,
                },
                crate::nn::ConvSpec {
                    out_channels: 8,
                    kernel: 4,
                    stride: 2,
                },
            ],
            hidden: vec![8],
            epochs: 8,
            ..NeuralNetConfig::wav2vec2_mini()
        };
        let net = NeuralNet::fit(&ds, &config).unwrap();
        (net, ds)
    }

    fn calib_rows(ds: &Dataset, n: usize) -> Vec<&[f64]> {
        (0..n.min(ds.len())).map(|i| ds.sample(i).0).collect()
    }

    #[test]
    fn quantized_net_logits_track_the_reference() {
        let (net, ds) = toy_conv_net(256, 7);
        let calib = calib_rows(&ds, 20);
        let qnet = QuantizedNet::from_net(&net, &calib).unwrap();
        let mut scratch = QuantScratch::new();
        let mut max_delta = 0.0f64;
        let mut ref_span = 0.0f64;
        for i in 0..ds.len() {
            let x = ds.sample(i).0;
            let r = net.logit(x);
            let q = qnet.forward_with(x, &mut scratch);
            max_delta = max_delta.max((r - q).abs());
            ref_span = ref_span.max(r.abs());
        }
        // Int8 keeps the logit within a small fraction of the reference span.
        assert!(
            max_delta <= 0.05 * ref_span.max(1.0),
            "max logit delta {max_delta} vs span {ref_span}"
        );
    }

    #[test]
    fn quantized_probabilities_stay_within_half_a_point() {
        let (net, ds) = toy_conv_net(256, 11);
        let calib = calib_rows(&ds, 20);
        let qnet = QuantizedNet::from_net(&net, &calib).unwrap();
        let mut worst = 0.0f64;
        for i in 0..ds.len() {
            let x = ds.sample(i).0;
            worst = worst.max((net.predict_proba(x) - qnet.predict_proba(x)).abs());
        }
        // The CI accuracy gate allows 0.5 pp; the probability drift that
        // drives it should sit well inside that.
        assert!(worst < 0.05, "worst probability delta {worst}");
    }

    #[test]
    fn scratch_reset_and_reuse_are_bit_identical() {
        let (net, ds) = toy_conv_net(128, 3);
        let calib = calib_rows(&ds, 10);
        let qnet = QuantizedNet::from_net(&net, &calib).unwrap();
        let x = ds.sample(1).0;

        let mut fresh = QuantScratch::new();
        let first = qnet.forward_with(x, &mut fresh);

        let mut reused = QuantScratch::new();
        for i in 0..ds.len() {
            qnet.forward_with(ds.sample(i).0, &mut reused); // dirty the buffers
        }
        let warm = qnet.forward_with(x, &mut reused);
        assert_eq!(first.to_bits(), warm.to_bits());

        reused.reset();
        let after_reset = qnet.forward_with(x, &mut reused);
        assert_eq!(first.to_bits(), after_reset.to_bits());
    }

    #[test]
    fn thread_local_scratch_matches_explicit_scratch_across_threads() {
        let (net, ds) = toy_conv_net(128, 5);
        let calib = calib_rows(&ds, 10);
        let qnet = QuantizedNet::from_net(&net, &calib).unwrap();
        let mut scratch = QuantScratch::new();
        let expected: Vec<f64> = (0..8)
            .map(|i| qnet.forward_with(ds.sample(i).0, &mut scratch))
            .collect();
        let expected_p: Vec<f64> = expected.iter().map(|l| 1.0 / (1.0 + (-l).exp())).collect();

        for threads in [1usize, 4] {
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| {
                        for (i, want) in expected_p.iter().enumerate() {
                            let got = qnet.predict_proba(ds.sample(i).0);
                            assert_eq!(want.to_bits(), got.to_bits());
                        }
                    });
                }
            });
        }
    }

    #[test]
    fn random_captures_property_agreement() {
        let (net, ds) = toy_conv_net(128, 13);
        let calib = calib_rows(&ds, 15);
        let qnet = QuantizedNet::from_net(&net, &calib).unwrap();
        ht_dsp::check::property("quant_logit_agreement")
            .cases(40)
            .run(|g| {
                // Random captures drawn from the same family as the training
                // set (static scales are calibrated for that envelope; they
                // saturate, by design, on wildly out-of-range inputs).
                let amp = g.f64_in(0.2..1.0);
                let freq = g.f64_in(0.04..0.12);
                let noise = g.vec_f64(-0.08..0.08, 128..129);
                let x: Vec<f64> = noise
                    .iter()
                    .enumerate()
                    .map(|(t, n)| amp * (freq * t as f64).sin() + n)
                    .collect();
                let r = net.logit(&x);
                let mut scratch = QuantScratch::new();
                let q = qnet.forward_with(&x, &mut scratch);
                assert!(
                    (r - q).abs() <= 0.25 * r.abs().max(1.0),
                    "logit {r} vs quantized {q}"
                );
            });
    }

    #[test]
    fn quantized_svm_scores_track_the_reference() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut ds = Dataset::new(3);
        for i in 0..80 {
            let label = i % 2;
            let c = if label == 1 { 1.5 } else { -1.5 };
            ds.push(
                (0..3)
                    .map(|_| c + 0.6 * ht_dsp::rng::gaussian(&mut rng))
                    .collect(),
                label,
            )
            .unwrap();
        }
        let svm = Svm::fit(&ds, &SvmParams::default()).unwrap();
        let calib: Vec<&[f64]> = (0..20).map(|i| ds.sample(i).0).collect();
        let qsvm = QuantizedSvm::from_svm(&svm, &calib).unwrap();

        let mut scratch = Vec::new();
        let mut agree = 0usize;
        for i in 0..ds.len() {
            let x = ds.sample(i).0;
            let r = svm.decision_score(x);
            let q = qsvm.decision_score_with(x, &mut scratch);
            assert!((r - q).abs() < 0.1 * r.abs().max(1.0), "score {r} vs {q}");
            agree += usize::from((r >= 0.0) == (q >= 0.0));
        }
        // Predicted labels must agree on every sample of this easy set, and
        // the trait-based TLS entry point must match the explicit scratch.
        assert_eq!(agree, ds.len());
        let x = ds.sample(0).0;
        assert_eq!(
            qsvm.decision_score(x).to_bits(),
            qsvm.decision_score_with(x, &mut scratch).to_bits()
        );
    }

    #[test]
    fn construction_rejects_bad_inputs() {
        let (net, ds) = toy_conv_net(128, 17);
        assert!(matches!(
            QuantizedNet::from_net(&net, &[]),
            Err(MlError::InvalidData(_))
        ));
        let short = vec![0.0; 5];
        assert!(matches!(
            QuantizedNet::from_net(&net, &[&short]),
            Err(MlError::InvalidData(_))
        ));

        // MLP-mode nets (no conv encoder) are rejected.
        let mut flat = Dataset::new(4);
        flat.push(vec![0.0, 0.0, 0.0, 0.0], 0).unwrap();
        flat.push(vec![1.0, 1.0, 1.0, 1.0], 1).unwrap();
        let mlp = NeuralNet::fit(
            &flat,
            &NeuralNetConfig {
                epochs: 2,
                ..NeuralNetConfig::mlp(vec![4])
            },
        )
        .unwrap();
        let _ = ds;
        assert!(matches!(
            QuantizedNet::from_net(&mlp, &[&[0.0, 0.0, 0.0, 0.0]]),
            Err(MlError::InvalidParameter(_))
        ));

        let svm_ds = {
            let mut d = Dataset::new(2);
            for i in 0..20 {
                let l = i % 2;
                let c = if l == 1 { 2.0 } else { -2.0 };
                d.push(vec![c, c + 0.1 * i as f64], l).unwrap();
            }
            d
        };
        let svm = Svm::fit(&svm_ds, &SvmParams::default()).unwrap();
        assert!(matches!(
            QuantizedSvm::from_svm(&svm, &[]),
            Err(MlError::InvalidData(_))
        ));
        let wrong = vec![0.0; 3];
        assert!(matches!(
            QuantizedSvm::from_svm(&svm, &[&wrong]),
            Err(MlError::InvalidData(_))
        ));
    }

    #[test]
    fn all_zero_calibration_yields_finite_scales() {
        let (net, ds) = toy_conv_net(128, 19);
        let zeros = vec![0.0; 128];
        let qnet = QuantizedNet::from_net(&net, &[&zeros]).unwrap();
        let mut scratch = QuantScratch::new();
        let out = qnet.forward_with(&zeros, &mut scratch);
        assert!(out.is_finite());
        let _ = ds;
    }
}
