//! Error type for the ML substrate.

use std::error::Error;
use std::fmt;

/// Error returned by fallible ML routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// Feature vectors with inconsistent dimensionality, empty datasets, …
    InvalidData(String),
    /// A hyperparameter outside its valid domain.
    InvalidParameter(String),
    /// Training could not proceed (e.g. a single-class dataset for a
    /// binary model).
    Degenerate(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::InvalidData(m) => write!(f, "invalid data: {m}"),
            MlError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            MlError::Degenerate(m) => write!(f, "degenerate training set: {m}"),
        }
    }
}

impl Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(MlError::InvalidData("x".into())
            .to_string()
            .contains("invalid data"));
        assert!(MlError::Degenerate("y".into())
            .to_string()
            .contains("degenerate"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<MlError>();
    }
}
