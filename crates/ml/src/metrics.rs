//! Evaluation metrics: the paper reports accuracy, precision, recall,
//! F1-score, true-positive rate (TPR), false-acceptance rate (FAR),
//! false-rejection rate (FRR) and equal error rate (EER) (§IV-A).
//!
//! Binary convention throughout the reproduction: class **1** is the
//! "positive" class (facing / live-human), class **0** is negative
//! (non-facing / replayed).

/// A binary confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// True positives (label 1 predicted 1).
    pub tp: usize,
    /// False positives (label 0 predicted 1).
    pub fp: usize,
    /// True negatives (label 0 predicted 0).
    pub tn: usize,
    /// False negatives (label 1 predicted 0).
    pub fn_: usize,
}

impl Confusion {
    /// Tallies predictions against labels.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn from_predictions(labels: &[usize], predictions: &[usize]) -> Confusion {
        assert_eq!(labels.len(), predictions.len(), "length mismatch");
        let mut c = Confusion::default();
        for (&l, &p) in labels.iter().zip(predictions.iter()) {
            match (l, p) {
                (1, 1) => c.tp += 1,
                (0, 1) => c.fp += 1,
                (0, 0) => c.tn += 1,
                (1, 0) => c.fn_ += 1,
                _ => panic!("binary metrics expect labels in {{0, 1}}, got ({l}, {p})"),
            }
        }
        c
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Overall accuracy (0 for an empty matrix).
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / self.total() as f64
        }
    }

    /// Precision for the positive class (0 when nothing was predicted
    /// positive).
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall / true-positive rate (0 when there are no positives).
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// TPR — alias for [`Confusion::recall`].
    pub fn tpr(&self) -> f64 {
        self.recall()
    }

    /// False-acceptance rate: fraction of negatives accepted as positive
    /// (a non-facing command wrongly accepted — the paper wants this low).
    pub fn far(&self) -> f64 {
        let denom = self.fp + self.tn;
        if denom == 0 {
            0.0
        } else {
            self.fp as f64 / denom as f64
        }
    }

    /// False-rejection rate: fraction of positives rejected (a facing
    /// command wrongly muted).
    pub fn frr(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.fn_ as f64 / denom as f64
        }
    }

    /// F1 score (harmonic mean of precision and recall; 0 when undefined).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Plain accuracy over arbitrary (multi-class) label sets.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn accuracy(labels: &[usize], predictions: &[usize]) -> f64 {
    assert_eq!(labels.len(), predictions.len(), "length mismatch");
    assert!(!labels.is_empty(), "empty evaluation set");
    let hits = labels
        .iter()
        .zip(predictions.iter())
        .filter(|(l, p)| l == p)
        .count();
    hits as f64 / labels.len() as f64
}

/// Equal error rate from continuous scores: the operating point where FAR
/// equals FRR. `scores[i]` is the class-1 score of sample `i`; `labels[i]`
/// in `{0, 1}`. Returns a rate in `[0, 1]`.
///
/// Sweeps every distinct score as a threshold and linearly interpolates the
/// FAR/FRR crossing.
///
/// # Panics
///
/// Panics on length mismatch, or when either class is absent.
pub fn equal_error_rate(labels: &[usize], scores: &[f64]) -> f64 {
    assert_eq!(labels.len(), scores.len(), "length mismatch");
    let positives: Vec<f64> = labels
        .iter()
        .zip(scores)
        .filter(|(l, _)| **l == 1)
        .map(|(_, s)| *s)
        .collect();
    let negatives: Vec<f64> = labels
        .iter()
        .zip(scores)
        .filter(|(l, _)| **l == 0)
        .map(|(_, s)| *s)
        .collect();
    assert!(
        !positives.is_empty() && !negatives.is_empty(),
        "EER needs both classes"
    );

    // Candidate thresholds: all scores, sorted.
    let mut thresholds: Vec<f64> = scores.to_vec();
    thresholds.sort_by(f64::total_cmp);
    thresholds.dedup();

    let mut prev: Option<(f64, f64)> = None; // (far, frr)
    for &t in &thresholds {
        // Accept when score >= t.
        let far = negatives.iter().filter(|&&s| s >= t).count() as f64 / negatives.len() as f64;
        let frr = positives.iter().filter(|&&s| s < t).count() as f64 / positives.len() as f64;
        if frr >= far {
            // Crossed over: interpolate with the previous point if any.
            return match prev {
                Some((pfar, pfrr)) => {
                    let d_prev = (pfar - pfrr).abs();
                    let d_cur = (far - frr).abs();
                    if d_prev + d_cur == 0.0 {
                        (far + frr) / 2.0
                    } else {
                        let w = d_prev / (d_prev + d_cur);
                        let far_x = pfar + w * (far - pfar);
                        let frr_x = pfrr + w * (frr - pfrr);
                        (far_x + frr_x) / 2.0
                    }
                }
                None => (far + frr) / 2.0,
            };
        }
        prev = Some((far, frr));
    }
    // FRR never reached FAR: everything accepted at the loosest threshold.
    match prev {
        Some((far, frr)) => (far + frr) / 2.0,
        None => 0.5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let labels = [1, 1, 0, 0, 1, 0];
        let preds = [1, 0, 0, 1, 1, 0];
        let c = Confusion::from_predictions(&labels, &preds);
        assert_eq!((c.tp, c.fp, c.tn, c.fn_), (2, 1, 2, 1));
        assert!((c.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.far() - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.frr() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_and_degenerate_cases() {
        let c = Confusion::from_predictions(&[1, 0], &[1, 0]);
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.far(), 0.0);
        assert_eq!(c.frr(), 0.0);
        let empty = Confusion::default();
        assert_eq!(empty.accuracy(), 0.0);
        assert_eq!(empty.f1(), 0.0);
    }

    #[test]
    #[should_panic(expected = "binary metrics")]
    fn non_binary_labels_panic() {
        Confusion::from_predictions(&[2], &[1]);
    }

    #[test]
    fn accuracy_multiclass() {
        assert!((accuracy(&[0, 1, 2, 2], &[0, 1, 2, 1]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn eer_of_perfect_separation_is_zero() {
        let labels = [1, 1, 1, 0, 0, 0];
        let scores = [0.9, 0.8, 0.7, 0.3, 0.2, 0.1];
        assert!(equal_error_rate(&labels, &scores) < 1e-9);
    }

    #[test]
    fn eer_of_random_scores_is_half() {
        // Interleaved scores: every threshold misclassifies half of each.
        let labels = [1, 0, 1, 0, 1, 0, 1, 0];
        let scores = [0.8, 0.8, 0.6, 0.6, 0.4, 0.4, 0.2, 0.2];
        let eer = equal_error_rate(&labels, &scores);
        assert!((eer - 0.5).abs() < 0.13, "eer {eer}");
    }

    #[test]
    fn eer_with_one_overlap() {
        // One negative scores above one positive -> EER 1/4 with 4 of each.
        let labels = [1, 1, 1, 1, 0, 0, 0, 0];
        let scores = [0.9, 0.8, 0.7, 0.35, 0.4, 0.3, 0.2, 0.1];
        let eer = equal_error_rate(&labels, &scores);
        assert!((eer - 0.25).abs() < 0.01, "eer {eer}");
    }

    #[test]
    fn eer_is_symmetric_under_score_shift() {
        let labels = [1, 1, 0, 0, 1, 0];
        let scores = [2.0, 1.5, 1.6, 0.5, 0.4, 0.3];
        let shifted: Vec<f64> = scores.iter().map(|s| s + 10.0).collect();
        let a = equal_error_rate(&labels, &scores);
        let b = equal_error_rate(&labels, &shifted);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn eer_requires_both_classes() {
        equal_error_rate(&[1, 1], &[0.5, 0.6]);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn eer_rejects_all_negative_labels_too() {
        equal_error_rate(&[0, 0, 0], &[0.1, 0.2, 0.3]);
    }

    #[test]
    fn empty_confusion_returns_zero_for_every_rate() {
        // A fold can legitimately end up empty (e.g. an angle filter that
        // matches nothing); every rate must degrade to 0, never NaN.
        let empty = Confusion::default();
        assert_eq!(empty.total(), 0);
        for rate in [
            empty.accuracy(),
            empty.precision(),
            empty.recall(),
            empty.tpr(),
            empty.far(),
            empty.frr(),
            empty.f1(),
        ] {
            assert_eq!(rate, 0.0);
        }
        let from_empty = Confusion::from_predictions(&[], &[]);
        assert_eq!(from_empty, empty);
    }

    #[test]
    fn single_class_positive_fold_has_zero_far() {
        // All-positive ground truth: FAR's denominator (fp + tn) is zero,
        // so FAR reports 0 rather than NaN; FRR still counts the misses.
        let c = Confusion::from_predictions(&[1, 1, 1, 1], &[1, 0, 1, 1]);
        assert_eq!(c.far(), 0.0);
        assert!((c.frr() - 0.25).abs() < 1e-12);
        assert_eq!(c.precision(), 1.0);
        assert!((c.recall() - 0.75).abs() < 1e-12);
        assert!((c.accuracy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn single_class_negative_fold_has_zero_recall_and_frr() {
        // All-negative ground truth: recall and FRR share the zero
        // denominator (tp + fn); FAR still counts the false accepts.
        let c = Confusion::from_predictions(&[0, 0, 0, 0], &[0, 1, 0, 0]);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.frr(), 0.0);
        assert!((c.far() - 0.25).abs() < 1e-12);
        assert_eq!(c.precision(), 0.0); // one fp, zero tp
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn nothing_predicted_positive_gives_zero_precision_and_f1() {
        let c = Confusion::from_predictions(&[1, 0, 1], &[0, 0, 0]);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.frr(), 1.0);
        assert_eq!(c.far(), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn confusion_rejects_length_mismatch() {
        Confusion::from_predictions(&[1, 0], &[1]);
    }

    #[test]
    #[should_panic(expected = "empty evaluation set")]
    fn accuracy_rejects_empty_sets() {
        accuracy(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn eer_rejects_length_mismatch() {
        equal_error_rate(&[1, 0], &[0.5]);
    }
}
