//! Random forest: bagged decision trees with feature subsampling.
//!
//! The paper "uses the Bagging algorithm for the RF classifier … and
//! empirically settles on the number of trees as 200" (§IV-A).

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, TreeParams};
use crate::{Classifier, MlError};
use ht_dsp::rng::Rng;

/// Random-forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestParams {
    /// Number of bagged trees (the paper settles on 200).
    pub n_trees: usize,
    /// Per-tree parameters. `max_features = None` here selects √dim
    /// automatically.
    pub tree: TreeParams,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 200,
            tree: TreeParams {
                max_splits: 32,
                min_samples_split: 2,
                max_features: None,
            },
        }
    }
}

/// A trained random forest.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Trains by bootstrap aggregation.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidParameter`] for zero trees and
    /// [`MlError::InvalidData`] for an empty dataset.
    pub fn fit<R: Rng>(
        ds: &Dataset,
        params: &ForestParams,
        rng: &mut R,
    ) -> Result<RandomForest, MlError> {
        if params.n_trees == 0 {
            return Err(MlError::InvalidParameter(
                "n_trees must be at least 1".into(),
            ));
        }
        if ds.is_empty() {
            return Err(MlError::InvalidData("empty training set".into()));
        }
        let mut tree_params = params.tree;
        if tree_params.max_features.is_none() {
            tree_params.max_features = Some(((ds.dim() as f64).sqrt().ceil() as usize).max(1));
        }
        let n = ds.len();
        // Fork one deterministic stream per tree from a single draw of the
        // caller's RNG. Every tree's bootstrap and split sampling then
        // depends only on (base, tree index), so the parallel fit produces
        // exactly the same forest for any thread count — and the same
        // forest as a serial loop over the trees.
        let base = rng.next_u64();
        let tree_indices: Vec<u64> = (0..params.n_trees as u64).collect();
        let trees = ht_par::par_map(&tree_indices, |&t| {
            let mut tree_rng = ht_dsp::rng::split_stream(base, t);
            // Bootstrap sample with replacement.
            let mut boot = Dataset::new(ds.dim());
            for _ in 0..n {
                let i = tree_rng.gen_range(0..n);
                let (f, l) = ds.sample(i);
                boot.push(f.to_vec(), l).expect("same dimensionality");
            }
            DecisionTree::fit(&boot, &tree_params, &mut tree_rng)
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
        Ok(RandomForest { trees })
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForest {
    fn predict(&self, x: &[f64]) -> usize {
        // BTreeMap + explicit tie-break (smallest label wins) so a vote tie
        // never depends on hash-map iteration order.
        let mut votes = std::collections::BTreeMap::new();
        for t in &self.trees {
            *votes.entry(t.predict(x)).or_insert(0usize) += 1;
        }
        votes
            .into_iter()
            .max_by(|(la, ca), (lb, cb)| ca.cmp(cb).then(lb.cmp(la)))
            .map(|(l, _)| l)
            .unwrap_or(0)
    }

    fn decision_score(&self, x: &[f64]) -> f64 {
        // Mean of the trees' leaf-purity scores.
        self.trees.iter().map(|t| t.decision_score(x)).sum::<f64>() / self.trees.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_dsp::rng::{SeedableRng, StdRng};

    fn noisy_blobs(n_per: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(4);
        for _ in 0..n_per {
            // Two informative features, two pure-noise features.
            ds.push(
                vec![
                    1.5 + 0.7 * ht_dsp::rng::gaussian(&mut rng),
                    1.5 + 0.7 * ht_dsp::rng::gaussian(&mut rng),
                    ht_dsp::rng::gaussian(&mut rng),
                    ht_dsp::rng::gaussian(&mut rng),
                ],
                1,
            )
            .unwrap();
            ds.push(
                vec![
                    -1.5 + 0.7 * ht_dsp::rng::gaussian(&mut rng),
                    -1.5 + 0.7 * ht_dsp::rng::gaussian(&mut rng),
                    ht_dsp::rng::gaussian(&mut rng),
                    ht_dsp::rng::gaussian(&mut rng),
                ],
                0,
            )
            .unwrap();
        }
        ds
    }

    fn small_params(n_trees: usize) -> ForestParams {
        ForestParams {
            n_trees,
            ..ForestParams::default()
        }
    }

    #[test]
    fn forest_classifies_noisy_blobs() {
        let train = noisy_blobs(60, 1);
        let test = noisy_blobs(60, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let rf = RandomForest::fit(&train, &small_params(25), &mut rng).unwrap();
        let acc = crate::metrics::accuracy(test.labels(), &rf.predict_batch(test.features()));
        assert!(acc > 0.93, "accuracy {acc}");
    }

    #[test]
    fn more_trees_do_not_hurt() {
        let train = noisy_blobs(40, 4);
        let test = noisy_blobs(40, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let one = RandomForest::fit(&train, &small_params(1), &mut rng).unwrap();
        let many = RandomForest::fit(&train, &small_params(30), &mut rng).unwrap();
        let acc1 = crate::metrics::accuracy(test.labels(), &one.predict_batch(test.features()));
        let acc30 = crate::metrics::accuracy(test.labels(), &many.predict_batch(test.features()));
        assert!(acc30 >= acc1 - 0.05, "1 tree {acc1}, 30 trees {acc30}");
        assert_eq!(many.n_trees(), 30);
    }

    #[test]
    fn scores_track_class_one_confidence() {
        let train = noisy_blobs(50, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let rf = RandomForest::fit(&train, &small_params(15), &mut rng).unwrap();
        assert!(rf.decision_score(&[2.0, 2.0, 0.0, 0.0]) > 0.5);
        assert!(rf.decision_score(&[-2.0, -2.0, 0.0, 0.0]) < -0.5);
    }

    #[test]
    fn invalid_params_are_rejected() {
        let ds = noisy_blobs(5, 9);
        let mut rng = StdRng::seed_from_u64(10);
        assert!(RandomForest::fit(&ds, &small_params(0), &mut rng).is_err());
        let empty = Dataset::new(2);
        assert!(RandomForest::fit(&empty, &small_params(3), &mut rng).is_err());
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let ds = noisy_blobs(20, 11);
        let a = RandomForest::fit(&ds, &small_params(5), &mut StdRng::seed_from_u64(12)).unwrap();
        let b = RandomForest::fit(&ds, &small_params(5), &mut StdRng::seed_from_u64(12)).unwrap();
        assert_eq!(a, b);
    }
}
