//! # ht-ml — classical machine-learning substrate
//!
//! From-scratch implementations of everything the HeadTalk paper's modeling
//! layer uses (the paper uses LIBSVM, MATLAB-style classifiers, SpeechBrain's
//! wav2vec2, SMOTE/ADASYN; see `DESIGN.md` for the substitutions):
//!
//! * [`dataset`] — feature-matrix containers, standardization, splits,
//! * [`metrics`] — accuracy/precision/recall/F1, TPR/FAR/FRR, EER, confusion
//!   matrices,
//! * [`svm`] — C-SVM with RBF kernel trained by SMO, plus grid search
//!   (the paper's selected orientation model, §IV-A),
//! * [`tree`] / [`forest`] — decision tree and bagged random forest,
//! * [`knn`] — k-nearest neighbours,
//! * [`nn`] — a small conv1d+dense neural network with Adam ("wav2vec2-mini",
//!   the liveness model stand-in),
//! * [`quant`] — int8 post-training quantization of the decision-path models
//!   (calibrated static scales; the f64 paths above stay byte-stable),
//! * [`sampling`] — SMOTE and ADASYN up-sampling (§IV-B14),
//! * [`crossval`] — k-fold and stratified cross-validation,
//! * [`incremental`] — the paper's incremental-learning protocol (§IV-A1,
//!   §IV-B9): fold high-confidence test samples back into training.
//!
//! # Example
//!
//! ```
//! use ht_ml::dataset::Dataset;
//! use ht_ml::svm::{Svm, SvmParams};
//! use ht_ml::Classifier;
//!
//! # fn main() -> Result<(), ht_ml::MlError> {
//! // A linearly separable toy problem.
//! let mut ds = Dataset::new(2);
//! for i in 0..20 {
//!     let v = i as f64 / 20.0;
//!     ds.push(vec![v, v + 1.0], 1)?;
//!     ds.push(vec![v, v - 1.0], 0)?;
//! }
//! let model = Svm::fit(&ds, &SvmParams::default())?;
//! assert_eq!(model.predict(&[0.5, 1.6]), 1);
//! assert_eq!(model.predict(&[0.5, -0.6]), 0);
//! # Ok(())
//! # }
//! ```

pub mod crossval;
pub mod dataset;
pub mod error;
pub mod forest;
pub mod incremental;
pub mod knn;
pub mod metrics;
pub mod nn;
pub mod quant;
pub mod sampling;
pub mod svm;
pub mod tree;

pub use dataset::Dataset;
pub use error::MlError;

/// A trained binary (or small multi-class) classifier.
///
/// Implemented by [`svm::Svm`], [`tree::DecisionTree`],
/// [`forest::RandomForest`], [`knn::Knn`] and [`nn::NeuralNet`], so the
/// evaluation harness can treat them uniformly (the paper compares all four
/// classical models in §IV-A before settling on the SVM).
pub trait Classifier {
    /// Predicts the class label of one feature vector.
    fn predict(&self, x: &[f64]) -> usize;

    /// A continuous decision score for class 1 (larger = more class-1).
    /// Used for EER computation and confidence-based incremental learning.
    fn decision_score(&self, x: &[f64]) -> f64;

    /// Predicts labels for many samples.
    fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}
