//! Confidence-based incremental learning.
//!
//! §IV-B9 of the paper: *"we can adopt an incremental learning approach and
//! reuse high-confidence test samples (i.e., ≥ 80%) as training data and
//! rebuild the model periodically."* This module implements that protocol
//! generically over any [`Classifier`] with a refit function.

use crate::dataset::Dataset;
use crate::{Classifier, MlError};

/// Selects the samples of `unlabeled` that the model classifies with
/// confidence at least `min_confidence` (in `[0.5, 1]`), returning them as a
/// dataset labeled with the model's own predictions (self-training labels).
///
/// Confidence is derived from the decision score via a logistic squash
/// (`σ(2·score)`, so that a sample on an SVM's margin — `score = ±1` — maps
/// to ≈88 % confidence); any classifier producing a monotone score works.
///
/// # Errors
///
/// Returns [`MlError::InvalidParameter`] for a `min_confidence` outside
/// `[0.5, 1]` (a threshold below chance selects *low*-confidence samples,
/// silently inverting the protocol), and propagates dataset errors.
pub fn high_confidence_samples<C: Classifier>(
    model: &C,
    unlabeled: &Dataset,
    min_confidence: f64,
) -> Result<Dataset, MlError> {
    if !(0.5..=1.0).contains(&min_confidence) {
        return Err(MlError::InvalidParameter(format!(
            "min_confidence must be in [0.5, 1], got {min_confidence}"
        )));
    }
    let mut out = Dataset::new(unlabeled.dim());
    for i in 0..unlabeled.len() {
        let (x, _) = unlabeled.sample(i);
        let score = model.decision_score(x);
        let p1 = 1.0 / (1.0 + (-2.0 * score).exp());
        let (label, conf) = if p1 >= 0.5 { (1, p1) } else { (0, 1.0 - p1) };
        if conf >= min_confidence {
            out.push(x.to_vec(), label)?;
        }
    }
    Ok(out)
}

/// One round of the paper's incremental protocol:
///
/// 1. score `new_data` with the current model,
/// 2. keep predictions with confidence ≥ `min_confidence` (self-labeled),
/// 3. cap the additions at `max_new` samples (the paper sweeps 10–40),
/// 4. append them to `train` and refit with the supplied closure.
///
/// Returns the refit model and the number of samples that were added.
///
/// # Errors
///
/// Returns [`MlError::InvalidData`] when `new_data`'s dimensionality
/// differs from `train`'s — scoring such samples would feed the model
/// inputs of a width it was never trained on (silent truncation for the
/// SVM's kernel, an out-of-bounds panic for the tree/kNN paths) — and
/// propagates errors from the confidence filter, the refit closure, and
/// dataset merging.
pub fn incremental_round<C, F>(
    model: &C,
    train: &mut Dataset,
    new_data: &Dataset,
    min_confidence: f64,
    max_new: usize,
    refit: F,
) -> Result<(C, usize), MlError>
where
    C: Classifier,
    F: FnOnce(&Dataset) -> Result<C, MlError>,
{
    if new_data.dim() != train.dim() {
        return Err(MlError::InvalidData(format!(
            "new data has dimension {}, training set has {}",
            new_data.dim(),
            train.dim()
        )));
    }
    let confident = high_confidence_samples(model, new_data, min_confidence)?;
    let take = confident.len().min(max_new);
    let capped = confident.filter_indices(|i| i < take);
    if !capped.is_empty() {
        train.extend(&capped)?;
    }
    let refitted = refit(train)?;
    Ok((refitted, take))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svm::{Svm, SvmParams};
    use ht_dsp::rng::{SeedableRng, StdRng};

    fn blobs(n_per: usize, seed: u64, center: f64, spread: f64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(2);
        for _ in 0..n_per {
            ds.push(
                vec![
                    center + spread * ht_dsp::rng::gaussian(&mut rng),
                    center + spread * ht_dsp::rng::gaussian(&mut rng),
                ],
                1,
            )
            .unwrap();
            ds.push(
                vec![
                    -center + spread * ht_dsp::rng::gaussian(&mut rng),
                    -center + spread * ht_dsp::rng::gaussian(&mut rng),
                ],
                0,
            )
            .unwrap();
        }
        ds
    }

    #[test]
    fn high_confidence_filter_keeps_easy_samples() {
        let train = blobs(30, 1, 2.0, 0.4);
        let model = Svm::fit(&train, &SvmParams::default()).unwrap();
        // Far-away samples are confident; near-boundary ones are not.
        let mut probe = Dataset::new(2);
        probe.push(vec![3.0, 3.0], 1).unwrap(); // deep class 1
        probe.push(vec![-3.0, -3.0], 0).unwrap(); // deep class 0
        probe.push(vec![0.02, -0.02], 0).unwrap(); // boundary
        let confident = high_confidence_samples(&model, &probe, 0.8).unwrap();
        assert_eq!(confident.len(), 2);
        assert_eq!(confident.labels(), &[1, 0]);
    }

    #[test]
    fn out_of_range_confidence_threshold_is_rejected() {
        let train = blobs(10, 8, 2.0, 0.3);
        let model = Svm::fit(&train, &SvmParams::default()).unwrap();
        for bad in [0.3, 1.5, -0.1] {
            assert!(high_confidence_samples(&model, &train, bad).is_err());
        }
    }

    #[test]
    fn dimension_mismatch_is_a_typed_error_not_a_panic() {
        let mut train = blobs(20, 9, 2.0, 0.3);
        let model = Svm::fit(&train, &SvmParams::default()).unwrap();
        let mut wrong = Dataset::new(3);
        wrong.push(vec![1.0, 2.0, 3.0], 1).unwrap();
        let err = incremental_round(&model, &mut train, &wrong, 0.8, 10, |d| {
            Svm::fit(d, &SvmParams::default())
        })
        .unwrap_err();
        assert!(matches!(err, MlError::InvalidData(_)), "got {err:?}");
    }

    #[test]
    fn incremental_round_grows_training_set_and_adapts() {
        // Initial model trained on a tight distribution; new data comes from
        // a drifted (translated) distribution, as in §IV-B9.
        let mut train = blobs(25, 2, 2.0, 0.4);
        let model = Svm::fit(&train, &SvmParams::default()).unwrap();

        let drifted = {
            let base = blobs(25, 3, 2.0, 0.4);
            let feats: Vec<Vec<f64>> = base
                .features()
                .iter()
                .map(|f| vec![f[0] + 1.0, f[1] + 1.0])
                .collect();
            Dataset::from_parts(feats, base.labels().to_vec()).unwrap()
        };

        let before_len = train.len();
        let (refit, added) = incremental_round(&model, &mut train, &drifted, 0.8, 20, |d| {
            Svm::fit(d, &SvmParams::default())
        })
        .unwrap();
        assert!(added > 0 && added <= 20);
        assert_eq!(train.len(), before_len + added);

        // The refit model still separates the drifted test data well.
        let test = {
            let base = blobs(25, 4, 2.0, 0.4);
            let feats: Vec<Vec<f64>> = base
                .features()
                .iter()
                .map(|f| vec![f[0] + 1.0, f[1] + 1.0])
                .collect();
            Dataset::from_parts(feats, base.labels().to_vec()).unwrap()
        };
        let acc = crate::metrics::accuracy(test.labels(), &refit.predict_batch(test.features()));
        assert!(acc > 0.9, "post-adaptation accuracy {acc}");
    }

    #[test]
    fn cap_limits_added_samples() {
        let mut train = blobs(20, 5, 2.0, 0.3);
        let model = Svm::fit(&train, &SvmParams::default()).unwrap();
        let new_data = blobs(50, 6, 2.0, 0.3);
        let (_, added) = incremental_round(&model, &mut train, &new_data, 0.8, 10, |d| {
            Svm::fit(d, &SvmParams::default())
        })
        .unwrap();
        assert_eq!(added, 10);
    }

    #[test]
    fn nothing_confident_means_nothing_added() {
        let mut train = blobs(20, 7, 2.0, 0.3);
        let model = Svm::fit(&train, &SvmParams::default()).unwrap();
        // All-boundary probe data.
        let mut probe = Dataset::new(2);
        for _ in 0..5 {
            probe.push(vec![0.0, 0.0], 0).unwrap();
        }
        let before = train.len();
        let (_, added) = incremental_round(&model, &mut train, &probe, 0.999, 10, |d| {
            Svm::fit(d, &SvmParams::default())
        })
        .unwrap();
        assert_eq!(added, 0);
        assert_eq!(train.len(), before);
    }
}
