//! k-nearest-neighbours classifier.
//!
//! The paper's kNN baseline uses k = 3 (§IV-A).

use crate::dataset::Dataset;
use crate::{Classifier, MlError};

/// A fitted (memorized) kNN model.
#[derive(Debug, Clone, PartialEq)]
pub struct Knn {
    data: Dataset,
    k: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl Knn {
    /// "Trains" (memorizes) the dataset with neighbourhood size `k`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidParameter`] for `k == 0` and
    /// [`MlError::InvalidData`] for an empty dataset.
    pub fn fit(ds: &Dataset, k: usize) -> Result<Knn, MlError> {
        if k == 0 {
            return Err(MlError::InvalidParameter("k must be at least 1".into()));
        }
        if ds.is_empty() {
            return Err(MlError::InvalidData("empty training set".into()));
        }
        Ok(Knn {
            data: ds.clone(),
            k: k.min(ds.len()),
        })
    }

    /// The neighbourhood size in effect.
    pub fn k(&self) -> usize {
        self.k
    }

    fn neighbours(&self, x: &[f64]) -> Vec<(f64, usize)> {
        let mut d: Vec<(f64, usize)> = self
            .data
            .features()
            .iter()
            .zip(self.data.labels().iter())
            .map(|(f, &l)| (sq_dist(f, x), l))
            .collect();
        d.sort_by(|a, b| a.0.total_cmp(&b.0));
        d.truncate(self.k);
        d
    }
}

impl Classifier for Knn {
    fn predict(&self, x: &[f64]) -> usize {
        let nb = self.neighbours(x);
        let mut votes = std::collections::HashMap::new();
        for (_, l) in &nb {
            *votes.entry(*l).or_insert(0usize) += 1;
        }
        // Ties break toward the nearest neighbour's label.
        let max_votes = votes.values().copied().max().unwrap_or(0);
        nb.iter()
            .find(|(_, l)| votes[l] == max_votes)
            .map(|(_, l)| *l)
            .unwrap_or(0)
    }

    fn decision_score(&self, x: &[f64]) -> f64 {
        let nb = self.neighbours(x);
        let ones = nb.iter().filter(|(_, l)| *l == 1).count() as f64;
        ones / nb.len().max(1) as f64 * 2.0 - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Dataset {
        let mut ds = Dataset::new(2);
        for i in 0..10 {
            let v = i as f64;
            ds.push(vec![v, 0.0], usize::from(v >= 5.0)).unwrap();
        }
        ds
    }

    #[test]
    fn nearest_neighbour_wins() {
        let knn = Knn::fit(&grid(), 1).unwrap();
        assert_eq!(knn.predict(&[0.2, 0.0]), 0);
        assert_eq!(knn.predict(&[8.7, 0.0]), 1);
    }

    #[test]
    fn k_three_majority_votes() {
        let knn = Knn::fit(&grid(), 3).unwrap();
        // At x = 4.6, neighbours are 5 (label 1), 4 (0), 6 (1) -> class 1.
        assert_eq!(knn.predict(&[4.6, 0.0]), 1);
        // At x = 4.4, neighbours are 4 (0), 5 (1), 3 (0) -> class 0.
        assert_eq!(knn.predict(&[4.4, 0.0]), 0);
    }

    #[test]
    fn k_is_clamped_to_dataset_size() {
        let knn = Knn::fit(&grid(), 100).unwrap();
        assert_eq!(knn.k(), 10);
    }

    #[test]
    fn scores_are_vote_fractions() {
        let knn = Knn::fit(&grid(), 3).unwrap();
        assert!((knn.decision_score(&[9.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((knn.decision_score(&[0.0, 0.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn tie_breaks_toward_nearest() {
        // k=2 with one neighbour of each class: the closer one decides.
        let mut ds = Dataset::new(1);
        ds.push(vec![0.0], 0).unwrap();
        ds.push(vec![1.0], 1).unwrap();
        let knn = Knn::fit(&ds, 2).unwrap();
        assert_eq!(knn.predict(&[0.1]), 0);
        assert_eq!(knn.predict(&[0.9]), 1);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(Knn::fit(&grid(), 0).is_err());
        assert!(Knn::fit(&Dataset::new(2), 3).is_err());
    }
}
