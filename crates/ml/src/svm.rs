//! Binary C-SVM with an RBF kernel, trained by Platt's SMO algorithm.
//!
//! This is the paper's selected orientation classifier (§IV-A: LIBSVM with
//! an RBF kernel, the complexity parameter chosen by grid search under
//! 10-fold cross-validation). The implementation follows Platt (1998) with
//! an error cache and a precomputed Gram matrix.

use crate::dataset::Dataset;
use crate::{Classifier, MlError};

/// RBF kernel width specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gamma {
    /// `1 / (dim · var(features))` — the sklearn "scale" heuristic; a good
    /// default for standardized features.
    Scale,
    /// Explicit γ value.
    Fixed(f64),
}

/// SVM hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmParams {
    /// Soft-margin penalty C.
    pub c: f64,
    /// RBF kernel width.
    pub gamma: Gamma,
    /// KKT violation tolerance.
    pub tol: f64,
    /// Maximum full passes over the data without progress before stopping.
    pub max_passes: usize,
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams {
            c: 10.0,
            gamma: Gamma::Scale,
            tol: 1e-3,
            max_passes: 5,
        }
    }
}

/// A trained RBF-kernel support-vector machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Svm {
    support_vectors: Vec<Vec<f64>>,
    /// `alpha_i * y_i` for each support vector.
    coeffs: Vec<f64>,
    bias: f64,
    gamma: f64,
}

fn rbf(a: &[f64], b: &[f64], gamma: f64) -> f64 {
    let mut d2 = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        d2 += d * d;
    }
    (-gamma * d2).exp()
}

fn resolve_gamma(ds: &Dataset, gamma: Gamma) -> f64 {
    match gamma {
        Gamma::Fixed(g) => g,
        Gamma::Scale => {
            // Pooled variance across all features.
            let mut all = Vec::with_capacity(ds.len() * ds.dim());
            for row in ds.features() {
                all.extend_from_slice(row);
            }
            let var = ht_dsp::stats::variance(&all).max(1e-12);
            1.0 / (ds.dim() as f64 * var)
        }
    }
}

impl Svm {
    /// Trains on a binary dataset (labels must be `{0, 1}`).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidData`] for non-binary labels,
    /// [`MlError::Degenerate`] when only one class is present, and
    /// [`MlError::InvalidParameter`] for a non-positive `C`.
    pub fn fit(ds: &Dataset, params: &SvmParams) -> Result<Svm, MlError> {
        if params.c <= 0.0 {
            return Err(MlError::InvalidParameter("C must be positive".into()));
        }
        if ds.is_empty() {
            return Err(MlError::InvalidData("empty training set".into()));
        }
        let classes = ds.classes();
        if classes.iter().any(|&c| c > 1) {
            return Err(MlError::InvalidData(
                "SVM expects binary labels in {0, 1}".into(),
            ));
        }
        if classes.len() < 2 {
            return Err(MlError::Degenerate(
                "training set contains a single class".into(),
            ));
        }

        let n = ds.len();
        let gamma = resolve_gamma(ds, params.gamma);
        let y: Vec<f64> = ds
            .labels()
            .iter()
            .map(|&l| if l == 1 { 1.0 } else { -1.0 })
            .collect();
        let x = ds.features();

        // Precomputed Gram matrix (training sets in the reproduction are at
        // most a few thousand samples).
        let gram: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| rbf(&x[i], &x[j], gamma)).collect())
            .collect();

        let mut alpha = vec![0.0f64; n];
        let mut b = 0.0f64;
        // Error cache: E_i = f(x_i) - y_i; with alpha = 0, f = b = 0.
        let mut errors: Vec<f64> = y.iter().map(|&yi| -yi).collect();

        let c = params.c;
        let tol = params.tol;
        let eps = 1e-8;

        let take_step = |i: usize,
                         j: usize,
                         alpha: &mut Vec<f64>,
                         b: &mut f64,
                         errors: &mut Vec<f64>|
         -> bool {
            if i == j {
                return false;
            }
            let (ai_old, aj_old) = (alpha[i], alpha[j]);
            let (yi, yj) = (y[i], y[j]);
            let (ei, ej) = (errors[i], errors[j]);

            let (lo, hi) = if (yi - yj).abs() > 1e-12 {
                ((aj_old - ai_old).max(0.0), (c + aj_old - ai_old).min(c))
            } else {
                ((ai_old + aj_old - c).max(0.0), (ai_old + aj_old).min(c))
            };
            if hi - lo < eps {
                return false;
            }
            let eta = 2.0 * gram[i][j] - gram[i][i] - gram[j][j];
            if eta >= -1e-12 {
                return false; // non-positive-definite direction, skip pair
            }
            let mut aj = aj_old - yj * (ei - ej) / eta;
            aj = aj.clamp(lo, hi);
            if (aj - aj_old).abs() < eps * (aj + aj_old + eps) {
                return false;
            }
            let ai = ai_old + yi * yj * (aj_old - aj);

            // Bias update (Platt's b1/b2 rule).
            let b1 = *b - ei - yi * (ai - ai_old) * gram[i][i] - yj * (aj - aj_old) * gram[i][j];
            let b2 = *b - ej - yi * (ai - ai_old) * gram[i][j] - yj * (aj - aj_old) * gram[j][j];
            let new_b = if ai > 0.0 && ai < c {
                b1
            } else if aj > 0.0 && aj < c {
                b2
            } else {
                (b1 + b2) / 2.0
            };

            // Refresh the error cache.
            let db = new_b - *b;
            for t in 0..n {
                errors[t] += yi * (ai - ai_old) * gram[i][t] + yj * (aj - aj_old) * gram[j][t] + db;
            }
            alpha[i] = ai;
            alpha[j] = aj;
            *b = new_b;
            true
        };

        // Platt's outer loop: alternate full sweeps and non-bound sweeps.
        let mut examine_all = true;
        let mut passes_without_progress = 0;
        let max_iters = 200 * n.max(50); // generous safety bound
        let mut iters = 0usize;
        while passes_without_progress < params.max_passes && iters < max_iters {
            let mut changed = 0usize;
            for i in 0..n {
                iters += 1;
                if !examine_all && (alpha[i] <= eps || alpha[i] >= c - eps) {
                    continue;
                }
                let ri = errors[i] * y[i];
                let violates = (ri < -tol && alpha[i] < c - eps) || (ri > tol && alpha[i] > eps);
                if !violates {
                    continue;
                }
                // Second-choice heuristic: maximize |E_i - E_j|.
                let mut j_best = None;
                let mut gap_best = -1.0;
                for j in 0..n {
                    if j == i {
                        continue;
                    }
                    let gap = (errors[i] - errors[j]).abs();
                    if gap > gap_best {
                        gap_best = gap;
                        j_best = Some(j);
                    }
                }
                if let Some(j) = j_best {
                    if take_step(i, j, &mut alpha, &mut b, &mut errors) {
                        changed += 1;
                        continue;
                    }
                }
                // Fallback: scan for any productive partner.
                for j in 0..n {
                    if take_step(i, j, &mut alpha, &mut b, &mut errors) {
                        changed += 1;
                        break;
                    }
                }
            }
            if changed == 0 {
                if examine_all {
                    passes_without_progress += 1;
                } else {
                    examine_all = true;
                }
            } else {
                examine_all = false;
                passes_without_progress = 0;
            }
        }

        // Keep only the support vectors.
        let mut support_vectors = Vec::new();
        let mut coeffs = Vec::new();
        for i in 0..n {
            if alpha[i] > eps {
                support_vectors.push(x[i].clone());
                coeffs.push(alpha[i] * y[i]);
            }
        }
        if support_vectors.is_empty() {
            return Err(MlError::Degenerate(
                "SMO produced no support vectors".into(),
            ));
        }
        Ok(Svm {
            support_vectors,
            coeffs,
            bias: b,
            gamma,
        })
    }

    /// Number of support vectors kept.
    pub fn n_support_vectors(&self) -> usize {
        self.support_vectors.len()
    }

    // ---- read-only views for the quantized backend (crate::quant) ----

    pub(crate) fn support_vectors(&self) -> &[Vec<f64>] {
        &self.support_vectors
    }

    pub(crate) fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    pub(crate) fn bias(&self) -> f64 {
        self.bias
    }

    pub(crate) fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Trains with a grid search over `(C, γ)` using `k`-fold
    /// cross-validation, returning the best model refit on all data and its
    /// chosen parameters. This mirrors the paper's LIBSVM protocol (10-fold
    /// CV, RBF grid search).
    ///
    /// # Errors
    ///
    /// Propagates training errors; returns [`MlError::InvalidParameter`] if
    /// `k < 2`.
    pub fn fit_grid_search<R: ht_dsp::rng::Rng>(
        ds: &Dataset,
        k: usize,
        rng: &mut R,
    ) -> Result<(Svm, SvmParams), MlError> {
        if k < 2 {
            return Err(MlError::InvalidParameter("k must be at least 2".into()));
        }
        let cs = [1.0, 10.0, 100.0];
        let gammas = [Gamma::Scale, Gamma::Fixed(0.01), Gamma::Fixed(0.1)];
        let folds = crate::crossval::stratified_folds(ds, k, rng);
        let mut best: Option<(f64, SvmParams)> = None;
        for &c in &cs {
            for &gamma in &gammas {
                let params = SvmParams {
                    c,
                    gamma,
                    ..SvmParams::default()
                };
                let mut correct = 0usize;
                let mut total = 0usize;
                for fold in &folds {
                    let (train, test) = fold.split(ds);
                    let Ok(model) = Svm::fit(&train, &params) else {
                        continue;
                    };
                    for i in 0..test.len() {
                        let (f, l) = test.sample(i);
                        if model.predict(f) == l {
                            correct += 1;
                        }
                        total += 1;
                    }
                }
                if total == 0 {
                    continue;
                }
                let acc = correct as f64 / total as f64;
                if best.map(|(b, _)| acc > b).unwrap_or(true) {
                    best = Some((acc, params));
                }
            }
        }
        let (_, params) = best.ok_or_else(|| {
            MlError::Degenerate("grid search found no trainable configuration".into())
        })?;
        Ok((Svm::fit(ds, &params)?, params))
    }
}

impl Classifier for Svm {
    fn predict(&self, x: &[f64]) -> usize {
        usize::from(self.decision_score(x) >= 0.0)
    }

    fn decision_score(&self, x: &[f64]) -> f64 {
        let mut f = self.bias;
        for (sv, &a) in self.support_vectors.iter().zip(self.coeffs.iter()) {
            f += a * rbf(sv, x, self.gamma);
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_dsp::rng::{SeedableRng, StdRng};

    /// Two Gaussian blobs, linearly separable.
    fn blobs(n_per: usize, seed: u64, gap: f64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(2);
        for _ in 0..n_per {
            ds.push(
                vec![
                    gap + 0.5 * ht_dsp::rng::gaussian(&mut rng),
                    gap + 0.5 * ht_dsp::rng::gaussian(&mut rng),
                ],
                1,
            )
            .unwrap();
            ds.push(
                vec![
                    -gap + 0.5 * ht_dsp::rng::gaussian(&mut rng),
                    -gap + 0.5 * ht_dsp::rng::gaussian(&mut rng),
                ],
                0,
            )
            .unwrap();
        }
        ds
    }

    /// XOR-style data: not linearly separable, needs the RBF kernel.
    fn xor(n_per: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(2);
        for _ in 0..n_per {
            for (sx, sy) in [(1.0, 1.0), (-1.0, -1.0), (1.0, -1.0), (-1.0, 1.0)] {
                let label = usize::from(sx * sy > 0.0);
                ds.push(
                    vec![
                        sx * 2.0 + 0.4 * ht_dsp::rng::gaussian(&mut rng),
                        sy * 2.0 + 0.4 * ht_dsp::rng::gaussian(&mut rng),
                    ],
                    label,
                )
                .unwrap();
            }
        }
        ds
    }

    #[test]
    fn separable_blobs_are_classified_perfectly() {
        let train = blobs(40, 1, 2.0);
        let test = blobs(40, 2, 2.0);
        let model = Svm::fit(&train, &SvmParams::default()).unwrap();
        let preds = model.predict_batch(test.features());
        let acc = crate::metrics::accuracy(test.labels(), &preds);
        assert!(acc > 0.98, "accuracy {acc}");
    }

    #[test]
    fn rbf_kernel_solves_xor() {
        let train = xor(30, 3);
        let test = xor(30, 4);
        let model = Svm::fit(&train, &SvmParams::default()).unwrap();
        let preds = model.predict_batch(test.features());
        let acc = crate::metrics::accuracy(test.labels(), &preds);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn decision_scores_order_by_margin() {
        let train = blobs(40, 5, 2.0);
        let model = Svm::fit(&train, &SvmParams::default()).unwrap();
        // Deep in class 1 territory scores higher than the boundary.
        assert!(model.decision_score(&[3.0, 3.0]) > model.decision_score(&[0.0, 0.0]));
        assert!(model.decision_score(&[-3.0, -3.0]) < 0.0);
    }

    #[test]
    fn support_vectors_are_a_subset() {
        let train = blobs(50, 6, 2.5);
        let model = Svm::fit(&train, &SvmParams::default()).unwrap();
        // Widely separated blobs need few support vectors.
        assert!(model.n_support_vectors() < train.len() / 2);
        assert!(model.n_support_vectors() >= 2);
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        let mut ds = Dataset::new(1);
        ds.push(vec![0.0], 1).unwrap();
        ds.push(vec![1.0], 1).unwrap();
        assert!(matches!(
            Svm::fit(&ds, &SvmParams::default()),
            Err(MlError::Degenerate(_))
        ));
        let mut multi = Dataset::new(1);
        multi.push(vec![0.0], 0).unwrap();
        multi.push(vec![1.0], 2).unwrap();
        assert!(Svm::fit(&multi, &SvmParams::default()).is_err());
        let bad = SvmParams {
            c: -1.0,
            ..SvmParams::default()
        };
        let ok = blobs(5, 7, 2.0);
        assert!(Svm::fit(&ok, &bad).is_err());
    }

    #[test]
    fn grid_search_matches_or_beats_default() {
        let train = xor(15, 8);
        let test = xor(15, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let (model, params) = Svm::fit_grid_search(&train, 5, &mut rng).unwrap();
        let acc = crate::metrics::accuracy(test.labels(), &model.predict_batch(test.features()));
        assert!(acc > 0.9, "grid-search accuracy {acc} with {params:?}");
    }

    #[test]
    fn overlapping_classes_do_not_diverge() {
        // Heavily overlapping blobs: training must terminate and do better
        // than chance.
        let train = blobs(60, 11, 0.5);
        let test = blobs(60, 12, 0.5);
        let model = Svm::fit(&train, &SvmParams::default()).unwrap();
        let acc = crate::metrics::accuracy(test.labels(), &model.predict_batch(test.features()));
        assert!(acc > 0.6, "accuracy {acc}");
    }
}
