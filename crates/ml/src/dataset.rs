//! Feature-matrix dataset containers and standardization.

use crate::MlError;
use ht_dsp::rng::Rng;
use ht_dsp::rng::SliceRandom;

/// A labeled dataset: row-major feature matrix plus integer class labels.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    labels: Vec<usize>,
    dim: usize,
}

impl Dataset {
    /// Creates an empty dataset whose samples will have `dim` features.
    pub fn new(dim: usize) -> Dataset {
        Dataset {
            features: Vec::new(),
            labels: Vec::new(),
            dim,
        }
    }

    /// Builds a dataset from parallel feature/label vectors.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidData`] on length mismatch, empty input, or
    /// ragged feature rows.
    pub fn from_parts(features: Vec<Vec<f64>>, labels: Vec<usize>) -> Result<Dataset, MlError> {
        if features.len() != labels.len() {
            return Err(MlError::InvalidData(format!(
                "{} feature rows but {} labels",
                features.len(),
                labels.len()
            )));
        }
        if features.is_empty() {
            return Err(MlError::InvalidData("empty dataset".into()));
        }
        let dim = features[0].len();
        if features.iter().any(|f| f.len() != dim) {
            return Err(MlError::InvalidData("ragged feature rows".into()));
        }
        Ok(Dataset {
            features,
            labels,
            dim,
        })
    }

    /// Appends one sample.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidData`] if the feature width differs from
    /// the dataset's dimensionality.
    pub fn push(&mut self, features: Vec<f64>, label: usize) -> Result<(), MlError> {
        if features.len() != self.dim {
            return Err(MlError::InvalidData(format!(
                "expected {} features, got {}",
                self.dim,
                features.len()
            )));
        }
        self.features.push(features);
        self.labels.push(label);
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// `true` if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The feature rows.
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// The labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// One sample.
    pub fn sample(&self, i: usize) -> (&[f64], usize) {
        (&self.features[i], self.labels[i])
    }

    /// The distinct labels present, sorted ascending.
    pub fn classes(&self) -> Vec<usize> {
        let mut c: Vec<usize> = self.labels.clone();
        c.sort_unstable();
        c.dedup();
        c
    }

    /// Count of samples per class, as `(label, count)` sorted by label.
    pub fn class_counts(&self) -> Vec<(usize, usize)> {
        self.classes()
            .into_iter()
            .map(|c| (c, self.labels.iter().filter(|&&l| l == c).count()))
            .collect()
    }

    /// A new dataset keeping only samples whose index satisfies `keep`.
    pub fn filter_indices(&self, keep: impl Fn(usize) -> bool) -> Dataset {
        let mut out = Dataset::new(self.dim);
        for i in 0..self.len() {
            if keep(i) {
                out.features.push(self.features[i].clone());
                out.labels.push(self.labels[i]);
            }
        }
        out
    }

    /// Merges another dataset into this one.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidData`] on dimensionality mismatch.
    pub fn extend(&mut self, other: &Dataset) -> Result<(), MlError> {
        if other.dim != self.dim {
            return Err(MlError::InvalidData(format!(
                "cannot merge dim {} into dim {}",
                other.dim, self.dim
            )));
        }
        self.features.extend(other.features.iter().cloned());
        self.labels.extend(other.labels.iter().copied());
        Ok(())
    }

    /// Randomly splits into `(train, test)` with `train_fraction` of the
    /// samples in the training part, shuffled by `rng`.
    pub fn split<R: Rng>(&self, train_fraction: f64, rng: &mut R) -> (Dataset, Dataset) {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        let n_train = (self.len() as f64 * train_fraction).round() as usize;
        let train_set: std::collections::HashSet<usize> =
            idx[..n_train.min(self.len())].iter().copied().collect();
        (
            self.filter_indices(|i| train_set.contains(&i)),
            self.filter_indices(|i| !train_set.contains(&i)),
        )
    }

    /// Draws `n` samples per class (without replacement) into a training
    /// set; everything else becomes the test set. Used by the training-size
    /// sweep of Fig. 11.
    pub fn split_per_class<R: Rng>(&self, n_per_class: usize, rng: &mut R) -> (Dataset, Dataset) {
        let mut chosen = std::collections::HashSet::new();
        for class in self.classes() {
            let mut members: Vec<usize> = (0..self.len())
                .filter(|&i| self.labels[i] == class)
                .collect();
            members.shuffle(rng);
            for &i in members.iter().take(n_per_class) {
                chosen.insert(i);
            }
        }
        (
            self.filter_indices(|i| chosen.contains(&i)),
            self.filter_indices(|i| !chosen.contains(&i)),
        )
    }
}

/// Per-feature standardization (zero mean, unit variance), fit on training
/// data and applied to both splits — required for RBF-kernel SVMs and the
/// neural network.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits the scaler on a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidData`] for an empty dataset.
    pub fn fit(ds: &Dataset) -> Result<Standardizer, MlError> {
        if ds.is_empty() {
            return Err(MlError::InvalidData(
                "cannot fit scaler on empty data".into(),
            ));
        }
        let n = ds.len() as f64;
        let dim = ds.dim();
        let mut means = vec![0.0; dim];
        for row in ds.features() {
            for (m, v) in means.iter_mut().zip(row.iter()) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; dim];
        for row in ds.features() {
            for ((s, v), m) in stds.iter_mut().zip(row.iter()).zip(means.iter()) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant feature: leave centered but unscaled
            }
        }
        Ok(Standardizer { means, stds })
    }

    /// The feature width the scaler was fitted on.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Transforms one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if the width differs from the fitted dimensionality.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.means.len(), "feature width mismatch");
        x.iter()
            .zip(self.means.iter())
            .zip(self.stds.iter())
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }

    /// Transforms a whole dataset (labels preserved).
    pub fn transform_dataset(&self, ds: &Dataset) -> Dataset {
        let feats = ds.features().iter().map(|f| self.transform(f)).collect();
        Dataset::from_parts(feats, ds.labels().to_vec()).expect("same shape as input")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_dsp::rng::{SeedableRng, StdRng};

    fn toy() -> Dataset {
        let feats = vec![
            vec![0.0, 10.0],
            vec![1.0, 20.0],
            vec![2.0, 30.0],
            vec![3.0, 40.0],
        ];
        Dataset::from_parts(feats, vec![0, 0, 1, 1]).unwrap()
    }

    #[test]
    fn construction_validates_shapes() {
        assert!(Dataset::from_parts(vec![vec![1.0]], vec![0, 1]).is_err());
        assert!(Dataset::from_parts(vec![], vec![]).is_err());
        assert!(Dataset::from_parts(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 1]).is_err());
        let mut ds = Dataset::new(2);
        assert!(ds.push(vec![1.0], 0).is_err());
        assert!(ds.push(vec![1.0, 2.0], 0).is_ok());
    }

    #[test]
    fn class_bookkeeping() {
        let ds = toy();
        assert_eq!(ds.classes(), vec![0, 1]);
        assert_eq!(ds.class_counts(), vec![(0, 2), (1, 2)]);
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.dim(), 2);
    }

    #[test]
    fn split_partitions_all_samples() {
        let ds = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let (tr, te) = ds.split(0.5, &mut rng);
        assert_eq!(tr.len() + te.len(), ds.len());
        assert_eq!(tr.len(), 2);
    }

    #[test]
    fn split_per_class_is_balanced() {
        let ds = toy();
        let mut rng = StdRng::seed_from_u64(2);
        let (tr, te) = ds.split_per_class(1, &mut rng);
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.class_counts(), vec![(0, 1), (1, 1)]);
        assert_eq!(te.len(), 2);
    }

    #[test]
    fn split_per_class_caps_at_available() {
        let ds = toy();
        let mut rng = StdRng::seed_from_u64(3);
        let (tr, te) = ds.split_per_class(100, &mut rng);
        assert_eq!(tr.len(), 4);
        assert!(te.is_empty());
    }

    #[test]
    fn standardizer_zeroes_mean_and_unit_variance() {
        let ds = toy();
        let sc = Standardizer::fit(&ds).unwrap();
        let t = sc.transform_dataset(&ds);
        for d in 0..2 {
            let col: Vec<f64> = t.features().iter().map(|f| f[d]).collect();
            assert!(ht_dsp::stats::mean(&col).abs() < 1e-12);
            assert!((ht_dsp::stats::variance(&col) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn standardizer_handles_constant_features() {
        let feats = vec![vec![5.0, 1.0], vec![5.0, 2.0]];
        let ds = Dataset::from_parts(feats, vec![0, 1]).unwrap();
        let sc = Standardizer::fit(&ds).unwrap();
        let t = sc.transform(&[5.0, 1.5]);
        assert_eq!(t[0], 0.0);
        assert!(t.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn extend_checks_dimensions() {
        let mut a = toy();
        let b = toy();
        assert!(a.extend(&b).is_ok());
        assert_eq!(a.len(), 8);
        let c = Dataset::from_parts(vec![vec![1.0]], vec![0]).unwrap();
        assert!(a.extend(&c).is_err());
    }
}
