//! K-fold cross-validation with stratification.

use crate::dataset::Dataset;
use ht_dsp::rng::Rng;
use ht_dsp::rng::SliceRandom;
use ht_dsp::rng::StdRng;

/// One cross-validation fold: the indices held out for testing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    test_indices: Vec<usize>,
}

impl Fold {
    /// The held-out indices.
    pub fn test_indices(&self) -> &[usize] {
        &self.test_indices
    }

    /// Materializes `(train, test)` datasets for this fold.
    pub fn split(&self, ds: &Dataset) -> (Dataset, Dataset) {
        let test_set: std::collections::HashSet<usize> =
            self.test_indices.iter().copied().collect();
        (
            ds.filter_indices(|i| !test_set.contains(&i)),
            ds.filter_indices(|i| test_set.contains(&i)),
        )
    }
}

/// Stratified `k`-fold split: every fold receives a proportional share of
/// each class (the paper's 10-fold CV protocol, §IV-A and §IV-B14).
///
/// # Panics
///
/// Panics if `k < 2` or `k > ds.len()`.
pub fn stratified_folds<R: Rng>(ds: &Dataset, k: usize, rng: &mut R) -> Vec<Fold> {
    assert!(k >= 2, "need at least 2 folds");
    assert!(k <= ds.len(), "more folds than samples");
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for class in ds.classes() {
        let mut members: Vec<usize> = (0..ds.len()).filter(|&i| ds.labels()[i] == class).collect();
        members.shuffle(rng);
        for (pos, idx) in members.into_iter().enumerate() {
            folds[pos % k].push(idx);
        }
    }
    folds
        .into_iter()
        .map(|test_indices| Fold { test_indices })
        .collect()
}

/// Leave-one-group-out folds: `groups[i]` assigns each sample to a group
/// (e.g. a participant in the Fig. 16 cross-user experiment); each fold
/// holds out one whole group.
///
/// # Panics
///
/// Panics if `groups.len() != ds.len()`.
pub fn leave_one_group_out(ds: &Dataset, groups: &[usize]) -> Vec<Fold> {
    assert_eq!(groups.len(), ds.len(), "one group id per sample");
    let mut distinct: Vec<usize> = groups.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    distinct
        .into_iter()
        .map(|g| Fold {
            test_indices: (0..ds.len()).filter(|&i| groups[i] == g).collect(),
        })
        .collect()
}

/// Evaluates every fold in parallel and returns the per-fold results in
/// fold order.
///
/// Each fold's evaluation receives its `(train, test)` split plus a private
/// RNG forked as `split_stream(seed, fold_index)`, so training inside a fold
/// never consumes another fold's randomness — the results are identical to
/// a serial loop over the folds, for any thread count.
pub fn evaluate_folds<T, F>(ds: &Dataset, folds: &[Fold], seed: u64, eval: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &Dataset, &Dataset, &mut StdRng) -> T + Sync,
{
    ht_par::par_map_indexed(folds, |i, fold| {
        let (train, test) = fold.split(ds);
        let mut rng = ht_dsp::rng::split_stream(seed, i as u64);
        eval(i, &train, &test, &mut rng)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_dsp::rng::{SeedableRng, StdRng};

    fn toy(n: usize) -> Dataset {
        let feats: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        Dataset::from_parts(feats, labels).unwrap()
    }

    #[test]
    fn folds_partition_the_dataset() {
        let ds = toy(20);
        let mut rng = StdRng::seed_from_u64(1);
        let folds = stratified_folds(&ds, 5, &mut rng);
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.iter().flat_map(|f| f.test_indices.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn folds_are_stratified() {
        let ds = toy(20);
        let mut rng = StdRng::seed_from_u64(2);
        for fold in stratified_folds(&ds, 5, &mut rng) {
            let (_, test) = fold.split(&ds);
            assert_eq!(test.class_counts(), vec![(0, 2), (1, 2)]);
        }
    }

    #[test]
    fn split_keeps_all_samples() {
        let ds = toy(10);
        let mut rng = StdRng::seed_from_u64(3);
        let folds = stratified_folds(&ds, 2, &mut rng);
        let (tr, te) = folds[0].split(&ds);
        assert_eq!(tr.len() + te.len(), 10);
    }

    #[test]
    #[should_panic(expected = "folds")]
    fn too_many_folds_panics() {
        let ds = toy(3);
        let mut rng = StdRng::seed_from_u64(4);
        stratified_folds(&ds, 5, &mut rng);
    }

    #[test]
    fn leave_one_group_out_holds_whole_groups() {
        let ds = toy(9);
        let groups = vec![0, 0, 0, 1, 1, 1, 2, 2, 2];
        let folds = leave_one_group_out(&ds, &groups);
        assert_eq!(folds.len(), 3);
        assert_eq!(folds[1].test_indices(), &[3, 4, 5]);
        let (tr, te) = folds[1].split(&ds);
        assert_eq!(te.len(), 3);
        assert_eq!(tr.len(), 6);
    }

    #[test]
    #[should_panic(expected = "group id")]
    fn group_length_mismatch_panics() {
        let ds = toy(4);
        leave_one_group_out(&ds, &[0, 1]);
    }

    #[test]
    fn evaluate_folds_is_thread_count_independent() {
        use crate::forest::{ForestParams, RandomForest};
        use crate::Classifier;
        let ds = toy(24);
        let mut rng = StdRng::seed_from_u64(5);
        let folds = stratified_folds(&ds, 4, &mut rng);
        let params = ForestParams {
            n_trees: 3,
            ..ForestParams::default()
        };
        let run = |threads: usize| {
            ht_par::Pool::new(threads).install(|| {
                evaluate_folds(&ds, &folds, 77, |i, train, test, fold_rng| {
                    let rf = RandomForest::fit(train, &params, fold_rng).unwrap();
                    let preds = rf.predict_batch(test.features());
                    (i, crate::metrics::accuracy(test.labels(), &preds))
                })
            })
        };
        let serial = run(1);
        assert_eq!(serial.len(), 4);
        for (i, r) in serial.iter().enumerate() {
            assert_eq!(r.0, i, "results arrive in fold order");
        }
        assert_eq!(run(4), serial);
    }
}
