//! `std::arch` AVX2 backends for the int8 inference kernels.
//!
//! The quantized conv forwards and SVM distances in [`crate::quant`] spend
//! their time in two flat kernels — i8·i8 → i32 dot products and i8
//! squared Euclidean distances. The portable versions are written as
//! eight-lane accumulator banks that LLVM autovectorizes, but the
//! autovectorized floor leaves real throughput on the table: the compiler
//! widens i8 operands to i32 before multiplying, spending four vectors of
//! work where AVX2's `vpmaddwd` needs one. The kernels here sign-extend
//! 16 operands at a time to i16 (`vpmovsxbw`) and multiply-accumulate
//! adjacent pairs straight into i32 lanes (`vpmaddwd`).
//!
//! **Exactness contract:** every kernel is pure integer arithmetic, so the
//! AVX2 result equals the scalar reference bit-for-bit on every input —
//! not merely within tolerance. CI gates this agreement (`kernel_quant`
//! bench) and the unit tests below pin it across shapes, including the
//! ragged tails the vector loop cannot touch.
//!
//! Overflow: one `vpmaddwd` lane sums two i16 products, each at most
//! `127 · 127` (dots) or `254²` (distances), so a lane grows by at most
//! `2 · 64516` per 16-element step. An i32 lane therefore safely
//! accumulates vectors of ~500k elements — three orders of magnitude
//! beyond the mini encoder's largest row (`in_ch · kernel = 128`).
//!
//! Everything is gated: compile-time to `x86_64` (other targets compile
//! the scalar path only) and runtime-detected via
//! [`is_x86_feature_detected!`], cached in an atomic so the hot-path
//! dispatch is one relaxed load and a predictable branch.

#[cfg(target_arch = "x86_64")]
use std::sync::atomic::{AtomicU8, Ordering};

/// Cached runtime detection: 0 = unprobed, 1 = unavailable, 2 = available.
#[cfg(target_arch = "x86_64")]
static AVX2_STATE: AtomicU8 = AtomicU8::new(0);

/// Whether the AVX2 kernels can run on this machine. Probes CPUID once
/// and caches the answer; afterwards a relaxed load.
#[cfg(target_arch = "x86_64")]
pub fn avx2_available() -> bool {
    match AVX2_STATE.load(Ordering::Relaxed) {
        0 => {
            let available = std::arch::is_x86_feature_detected!("avx2");
            AVX2_STATE.store(if available { 2 } else { 1 }, Ordering::Relaxed);
            available
        }
        state => state == 2,
    }
}

/// Non-x86_64 targets never have the AVX2 kernels.
#[cfg(not(target_arch = "x86_64"))]
pub fn avx2_available() -> bool {
    false
}

#[cfg(target_arch = "x86_64")]
#[deny(unsafe_op_in_unsafe_fn)]
mod x86 {
    use std::arch::x86_64::*;

    /// Sums the eight i32 lanes of `v`. Register-only arithmetic — safe
    /// given the enclosing `target_feature`, no unsafe block needed.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn hsum_epi32(v: __m256i) -> i32 {
        let lo = _mm256_castsi256_si128(v);
        let hi = _mm256_extracti128_si256::<1>(v);
        let q = _mm_add_epi32(lo, hi);
        let sh = _mm_add_epi32(q, _mm_shuffle_epi32::<0b00_01_10_11>(q));
        let s = _mm_add_epi32(sh, _mm_shuffle_epi32::<0b01_00_11_10>(sh));
        _mm_cvtsi128_si32(s)
    }

    /// AVX2 i8·i8 → i32 dot product: 16 operands per step through
    /// sign-extension to i16 and `vpmaddwd` pair-accumulation.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_i8(w: &[i8], x: &[i8]) -> i32 {
        let n = w.len().min(x.len());
        let mut acc;
        let steps = n / 16;
        // SAFETY: AVX2 guaranteed by the caller; every unaligned load
        // reads 16 bytes at `i * 16` with `i < steps`, so the furthest
        // byte is `steps * 16 - 1 < n` — in bounds for both slices.
        unsafe {
            acc = _mm256_setzero_si256();
            for i in 0..steps {
                let wv = _mm_loadu_si128(w.as_ptr().add(i * 16).cast());
                let xv = _mm_loadu_si128(x.as_ptr().add(i * 16).cast());
                let w16 = _mm256_cvtepi8_epi16(wv);
                let x16 = _mm256_cvtepi8_epi16(xv);
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(w16, x16));
            }
        }
        // SAFETY: AVX2 guaranteed by the caller.
        let mut total = unsafe { hsum_epi32(acc) };
        for i in steps * 16..n {
            total += w[i] as i32 * x[i] as i32;
        }
        total
    }

    /// AVX2 i8 squared Euclidean distance: differences fit i16
    /// (range ±254), squared and pair-accumulated by `vpmaddwd`.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dist2_i8(a: &[i8], b: &[i8]) -> i32 {
        let n = a.len().min(b.len());
        let mut acc;
        let steps = n / 16;
        // SAFETY: AVX2 guaranteed by the caller; load bounds as in
        // `dot_i8` above.
        unsafe {
            acc = _mm256_setzero_si256();
            for i in 0..steps {
                let av = _mm_loadu_si128(a.as_ptr().add(i * 16).cast());
                let bv = _mm_loadu_si128(b.as_ptr().add(i * 16).cast());
                let d = _mm256_sub_epi16(_mm256_cvtepi8_epi16(av), _mm256_cvtepi8_epi16(bv));
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d, d));
            }
        }
        // SAFETY: AVX2 guaranteed by the caller.
        let mut total = unsafe { hsum_epi32(acc) };
        for i in steps * 16..n {
            let d = a[i] as i32 - b[i] as i32;
            total += d * d;
        }
        total
    }
}

/// AVX2 i8·i8 → i32 dot product — safe entry point for the CI agreement
/// gate and the kernel benches (the inference hot path dispatches through
/// `quant::dot_i8` instead, skipping the per-call assertion).
///
/// # Panics
///
/// Panics when AVX2 is unavailable; check [`avx2_available`] first.
pub fn dot_i8_avx2(w: &[i8], x: &[i8]) -> i32 {
    assert!(avx2_available(), "AVX2 kernels need runtime AVX2 support");
    #[cfg(target_arch = "x86_64")]
    // SAFETY: availability asserted above.
    unsafe {
        x86::dot_i8(w, x)
    }
    #[cfg(not(target_arch = "x86_64"))]
    unreachable!("avx2_available() is constant false off x86_64")
}

/// AVX2 i8 squared Euclidean distance — safe entry point, as
/// [`dot_i8_avx2`].
///
/// # Panics
///
/// Panics when AVX2 is unavailable; check [`avx2_available`] first.
pub fn dist2_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
    assert!(avx2_available(), "AVX2 kernels need runtime AVX2 support");
    #[cfg(target_arch = "x86_64")]
    // SAFETY: availability asserted above.
    unsafe {
        x86::dist2_i8(a, b)
    }
    #[cfg(not(target_arch = "x86_64"))]
    unreachable!("avx2_available() is constant false off x86_64")
}

/// Hot-path dispatch used by the quantized kernels: AVX2 when the machine
/// has it, the autovectorized scalar bank otherwise. Always bit-identical
/// to [`super::dot_i8_scalar`].
#[inline]
pub(super) fn dot_i8(w: &[i8], x: &[i8]) -> i32 {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: availability checked on this line.
        return unsafe { x86::dot_i8(w, x) };
    }
    super::dot_i8_scalar(w, x)
}

/// Hot-path dispatch, as [`dot_i8`]. Always bit-identical to
/// [`super::dist2_i8_scalar`].
#[inline]
pub(super) fn dist2_i8(a: &[i8], b: &[i8]) -> i32 {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: availability checked on this line.
        return unsafe { x86::dist2_i8(a, b) };
    }
    super::dist2_i8_scalar(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::{dist2_i8_scalar, dot_i8_scalar};
    use ht_dsp::rng::{Rng, SeedableRng, StdRng};

    fn random_i8(rng: &mut StdRng, n: usize) -> Vec<i8> {
        (0..n).map(|_| (rng.next_u64() % 255) as i8).collect()
    }

    #[test]
    fn avx2_dot_equals_scalar_on_every_shape() {
        if !avx2_available() {
            eprintln!("skipping: AVX2 not available on this machine");
            return;
        }
        let mut rng = StdRng::seed_from_u64(0xD07);
        // Shapes around every boundary: empty, sub-step, exact steps,
        // ragged tails, and the mini encoder's real row widths.
        for n in [0, 1, 7, 15, 16, 17, 31, 32, 33, 64, 100, 128, 1000] {
            let w = random_i8(&mut rng, n);
            let x = random_i8(&mut rng, n);
            assert_eq!(dot_i8_avx2(&w, &x), dot_i8_scalar(&w, &x), "dot shape {n}");
            assert_eq!(
                dist2_i8_avx2(&w, &x),
                dist2_i8_scalar(&w, &x),
                "dist2 shape {n}"
            );
        }
    }

    #[test]
    fn avx2_handles_extreme_values_exactly() {
        if !avx2_available() {
            eprintln!("skipping: AVX2 not available on this machine");
            return;
        }
        // i8::MIN products and differences stress the sign extension:
        // (-128)·(-128) = 16384 and (127 − (−128))² = 65025 both exceed
        // i16 positive range if the extension is mishandled.
        for n in [16, 17, 48] {
            let lo = vec![i8::MIN; n];
            let hi = vec![i8::MAX; n];
            assert_eq!(dot_i8_avx2(&lo, &lo), dot_i8_scalar(&lo, &lo));
            assert_eq!(dot_i8_avx2(&lo, &hi), dot_i8_scalar(&lo, &hi));
            assert_eq!(dist2_i8_avx2(&lo, &hi), dist2_i8_scalar(&lo, &hi));
            assert_eq!(dist2_i8_avx2(&hi, &lo), dist2_i8_scalar(&hi, &lo));
        }
    }

    #[test]
    fn dispatch_matches_scalar_regardless_of_backend() {
        let mut rng = StdRng::seed_from_u64(0xD15);
        for n in [5, 64, 129] {
            let a = random_i8(&mut rng, n);
            let b = random_i8(&mut rng, n);
            assert_eq!(dot_i8(&a, &b), dot_i8_scalar(&a, &b));
            assert_eq!(dist2_i8(&a, &b), dist2_i8_scalar(&a, &b));
        }
    }
}
