//! A CART-style decision tree with Gini impurity.
//!
//! The paper's DT baseline uses "the maximum number of splits as 5"
//! (§IV-A); [`TreeParams::max_splits`] reproduces that control.

use crate::dataset::Dataset;
use crate::{Classifier, MlError};
use ht_dsp::rng::Rng;

/// Decision-tree hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum number of internal split nodes (the paper's DT uses 5).
    pub max_splits: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Number of random features to consider per split (`None` = all);
    /// used by the random forest.
    pub max_features: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_splits: 5,
            min_samples_split: 2,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        label: usize,
        /// Fraction of class-1 samples at this leaf (the decision score).
        p1: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A trained decision tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    root: Node,
    n_splits: usize,
}

// Class counts use BTreeMap, not HashMap: iteration order feeds a float
// sum (gini) and a tie-break (majority), so it must be deterministic for
// repeated fits to produce identical trees.
fn gini(labels: &[usize], indices: &[usize]) -> f64 {
    if indices.is_empty() {
        return 0.0;
    }
    let mut counts = std::collections::BTreeMap::new();
    for &i in indices {
        *counts.entry(labels[i]).or_insert(0usize) += 1;
    }
    let n = indices.len() as f64;
    1.0 - counts
        .values()
        .map(|&c| (c as f64 / n).powi(2))
        .sum::<f64>()
}

fn majority(labels: &[usize], indices: &[usize]) -> (usize, f64) {
    let mut counts = std::collections::BTreeMap::new();
    for &i in indices {
        *counts.entry(labels[i]).or_insert(0usize) += 1;
    }
    // Ties break toward the smallest label (max_by_key keeps the last
    // maximum of the ascending label order — so prefer the first).
    let label = counts
        .iter()
        .max_by(|(la, ca), (lb, cb)| ca.cmp(cb).then(lb.cmp(la)))
        .map(|(&l, _)| l)
        .unwrap_or(0);
    let ones = counts.get(&1).copied().unwrap_or(0) as f64;
    (label, ones / indices.len().max(1) as f64)
}

struct Builder<'a> {
    ds: &'a Dataset,
    params: TreeParams,
    splits_used: usize,
    feature_pool: Vec<usize>,
}

impl Builder<'_> {
    fn best_split<R: Rng>(
        &mut self,
        indices: &[usize],
        rng: &mut R,
    ) -> Option<(usize, f64, Vec<usize>, Vec<usize>)> {
        let labels = self.ds.labels();
        let parent_gini = gini(labels, indices);
        if parent_gini == 0.0 {
            return None;
        }
        // Feature subsample for forests.
        let features: Vec<usize> = match self.params.max_features {
            Some(k) if k < self.feature_pool.len() => {
                use ht_dsp::rng::SliceRandom;
                let mut pool = self.feature_pool.clone();
                pool.shuffle(rng);
                pool.truncate(k);
                pool
            }
            _ => self.feature_pool.clone(),
        };

        let mut best: Option<(f64, usize, f64)> = None; // (weighted gini, feat, thr)
        for &f in &features {
            let mut vals: Vec<f64> = indices.iter().map(|&i| self.ds.features()[i][f]).collect();
            vals.sort_by(f64::total_cmp);
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            for w in vals.windows(2) {
                let thr = (w[0] + w[1]) / 2.0;
                let (mut left, mut right) = (Vec::new(), Vec::new());
                for &i in indices {
                    if self.ds.features()[i][f] <= thr {
                        left.push(i);
                    } else {
                        right.push(i);
                    }
                }
                if left.is_empty() || right.is_empty() {
                    continue;
                }
                let n = indices.len() as f64;
                let weighted = gini(labels, &left) * left.len() as f64 / n
                    + gini(labels, &right) * right.len() as f64 / n;
                if best.map(|(b, _, _)| weighted < b).unwrap_or(true) {
                    best = Some((weighted, f, thr));
                }
            }
        }
        let (weighted, f, thr) = best?;
        if weighted >= parent_gini - 1e-12 {
            return None; // no impurity reduction
        }
        let (mut left, mut right) = (Vec::new(), Vec::new());
        for &i in indices {
            if self.ds.features()[i][f] <= thr {
                left.push(i);
            } else {
                right.push(i);
            }
        }
        Some((f, thr, left, right))
    }

    fn build<R: Rng>(&mut self, indices: &[usize], rng: &mut R) -> Node {
        let labels = self.ds.labels();
        if indices.len() < self.params.min_samples_split
            || self.splits_used >= self.params.max_splits
        {
            let (label, p1) = majority(labels, indices);
            return Node::Leaf { label, p1 };
        }
        match self.best_split(indices, rng) {
            Some((feature, threshold, left, right)) => {
                self.splits_used += 1;
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(self.build(&left, rng)),
                    right: Box::new(self.build(&right, rng)),
                }
            }
            None => {
                let (label, p1) = majority(labels, indices);
                Node::Leaf { label, p1 }
            }
        }
    }
}

impl DecisionTree {
    /// Trains a tree.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidData`] for an empty dataset.
    pub fn fit<R: Rng>(
        ds: &Dataset,
        params: &TreeParams,
        rng: &mut R,
    ) -> Result<DecisionTree, MlError> {
        if ds.is_empty() {
            return Err(MlError::InvalidData("empty training set".into()));
        }
        let indices: Vec<usize> = (0..ds.len()).collect();
        let mut builder = Builder {
            ds,
            params: *params,
            splits_used: 0,
            feature_pool: (0..ds.dim()).collect(),
        };
        let root = builder.build(&indices, rng);
        Ok(DecisionTree {
            root,
            n_splits: builder.splits_used,
        })
    }

    /// Number of internal split nodes actually used.
    pub fn n_splits(&self) -> usize {
        self.n_splits
    }

    fn walk(&self, x: &[f64]) -> (&usize, f64) {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { label, p1 } => return (label, *p1),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

impl Classifier for DecisionTree {
    fn predict(&self, x: &[f64]) -> usize {
        *self.walk(x).0
    }

    fn decision_score(&self, x: &[f64]) -> f64 {
        // Map leaf class-1 probability to a signed score.
        self.walk(x).1 * 2.0 - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_dsp::rng::{SeedableRng, StdRng};

    fn steps() -> Dataset {
        // 1-D threshold problem: x > 0.5 -> class 1.
        let feats: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let labels: Vec<usize> = (0..40)
            .map(|i| usize::from(i as f64 / 40.0 > 0.5))
            .collect();
        Dataset::from_parts(feats, labels).unwrap()
    }

    #[test]
    fn learns_a_threshold() {
        let ds = steps();
        let mut rng = StdRng::seed_from_u64(1);
        let tree = DecisionTree::fit(&ds, &TreeParams::default(), &mut rng).unwrap();
        assert_eq!(tree.predict(&[0.9]), 1);
        assert_eq!(tree.predict(&[0.1]), 0);
        assert!(tree.n_splits() >= 1);
    }

    #[test]
    fn respects_max_splits() {
        // A 2-D checkerboard needs many splits; cap at 1 and count.
        let mut ds = Dataset::new(2);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let x: f64 = rng.gen::<f64>() * 4.0;
            let y: f64 = rng.gen::<f64>() * 4.0;
            let label = ((x as usize) + (y as usize)) % 2;
            ds.push(vec![x, y], label).unwrap();
        }
        let params = TreeParams {
            max_splits: 1,
            ..TreeParams::default()
        };
        let tree = DecisionTree::fit(&ds, &params, &mut rng).unwrap();
        assert!(tree.n_splits() <= 1);
    }

    #[test]
    fn pure_dataset_is_a_single_leaf() {
        let feats = vec![vec![1.0], vec![2.0]];
        let ds = Dataset::from_parts(feats, vec![1, 1]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let tree = DecisionTree::fit(&ds, &TreeParams::default(), &mut rng).unwrap();
        assert_eq!(tree.n_splits(), 0);
        assert_eq!(tree.predict(&[5.0]), 1);
    }

    #[test]
    fn decision_scores_reflect_leaf_purity() {
        let ds = steps();
        let mut rng = StdRng::seed_from_u64(4);
        let tree = DecisionTree::fit(&ds, &TreeParams::default(), &mut rng).unwrap();
        assert!(tree.decision_score(&[0.9]) > 0.0);
        assert!(tree.decision_score(&[0.1]) < 0.0);
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let ds = Dataset::new(1);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(DecisionTree::fit(&ds, &TreeParams::default(), &mut rng).is_err());
    }

    #[test]
    fn multiclass_labels_are_supported() {
        let feats: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..30).map(|i| i / 10).collect();
        let ds = Dataset::from_parts(feats, labels).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let params = TreeParams {
            max_splits: 10,
            ..TreeParams::default()
        };
        let tree = DecisionTree::fit(&ds, &params, &mut rng).unwrap();
        assert_eq!(tree.predict(&[5.0]), 0);
        assert_eq!(tree.predict(&[15.0]), 1);
        assert_eq!(tree.predict(&[25.0]), 2);
    }
}
