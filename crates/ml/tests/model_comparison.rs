//! Cross-model integration tests: the four §IV-A classifier families on
//! shared benchmark problems, plus end-to-end metric plumbing.

use ht_dsp::rng::{SeedableRng, StdRng};
use ht_ml::dataset::{Dataset, Standardizer};
use ht_ml::forest::{ForestParams, RandomForest};
use ht_ml::knn::Knn;
use ht_ml::metrics::{equal_error_rate, Confusion};
use ht_ml::svm::{Svm, SvmParams};
use ht_ml::tree::{DecisionTree, TreeParams};
use ht_ml::Classifier;

/// Two anisotropic Gaussian classes with a few nuisance dimensions.
fn benchmark(n_per: usize, seed: u64, sep: f64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::new(6);
    for _ in 0..n_per {
        for label in [0usize, 1] {
            let c = if label == 1 { sep } else { -sep };
            let row: Vec<f64> = (0..6)
                .map(|k| match k {
                    0 => c + 0.6 * ht_dsp::rng::gaussian(&mut rng),
                    1 => 0.5 * c + 1.0 * ht_dsp::rng::gaussian(&mut rng),
                    _ => ht_dsp::rng::gaussian(&mut rng),
                })
                .collect();
            ds.push(row, label).unwrap();
        }
    }
    ds
}

fn all_models(train: &Dataset, seed: u64) -> Vec<(&'static str, Box<dyn Classifier>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        (
            "SVM",
            Box::new(Svm::fit(train, &SvmParams::default()).unwrap()) as Box<dyn Classifier>,
        ),
        (
            "RF",
            Box::new(
                RandomForest::fit(
                    train,
                    &ForestParams {
                        n_trees: 30,
                        ..ForestParams::default()
                    },
                    &mut rng,
                )
                .unwrap(),
            ),
        ),
        (
            "DT",
            Box::new(DecisionTree::fit(train, &TreeParams::default(), &mut rng).unwrap()),
        ),
        ("kNN", Box::new(Knn::fit(train, 3).unwrap())),
    ]
}

#[test]
fn all_four_families_beat_chance_comfortably() {
    let train = benchmark(60, 1, 1.0);
    let test = benchmark(60, 2, 1.0);
    for (name, model) in all_models(&train, 3) {
        let preds = model.predict_batch(test.features());
        let acc = ht_ml::metrics::accuracy(test.labels(), &preds);
        assert!(acc > 0.8, "{name}: accuracy {acc}");
    }
}

#[test]
fn standardization_helps_the_svm_with_scaled_features() {
    // Blow one feature up by 1000x: the RBF kernel collapses without
    // standardization but works with it.
    let base = benchmark(50, 4, 1.2);
    let scaled_feats: Vec<Vec<f64>> = base
        .features()
        .iter()
        .map(|f| {
            let mut v = f.clone();
            v[5] *= 1000.0;
            v
        })
        .collect();
    let ds = Dataset::from_parts(scaled_feats, base.labels().to_vec()).unwrap();
    let (train, test) = {
        let mut rng = StdRng::seed_from_u64(5);
        ds.split(0.5, &mut rng)
    };
    let raw = Svm::fit(&train, &SvmParams::default()).unwrap();
    let raw_acc = ht_ml::metrics::accuracy(test.labels(), &raw.predict_batch(test.features()));
    let sc = Standardizer::fit(&train).unwrap();
    let std_model = Svm::fit(&sc.transform_dataset(&train), &SvmParams::default()).unwrap();
    let std_feats: Vec<Vec<f64>> = test.features().iter().map(|f| sc.transform(f)).collect();
    let std_acc = ht_ml::metrics::accuracy(test.labels(), &std_model.predict_batch(&std_feats));
    assert!(
        std_acc >= raw_acc,
        "standardized {std_acc} vs raw {raw_acc}"
    );
    assert!(std_acc > 0.85);
}

#[test]
fn decision_scores_produce_sensible_eer() {
    let train = benchmark(60, 6, 1.0);
    let test_easy = benchmark(60, 7, 2.5);
    let test_hard = benchmark(60, 8, 0.3);
    let model = Svm::fit(&train, &SvmParams::default()).unwrap();
    let eer_of = |ds: &Dataset| {
        let scores: Vec<f64> = ds
            .features()
            .iter()
            .map(|f| model.decision_score(f))
            .collect();
        equal_error_rate(ds.labels(), &scores)
    };
    let easy = eer_of(&test_easy);
    let hard = eer_of(&test_hard);
    assert!(easy < hard, "easy EER {easy} should beat hard EER {hard}");
    assert!(easy < 0.1);
}

#[test]
fn cross_validation_estimates_match_holdout() {
    let ds = benchmark(100, 9, 1.0);
    let mut rng = StdRng::seed_from_u64(10);
    let folds = ht_ml::crossval::stratified_folds(&ds, 5, &mut rng);
    let mut cv_accs = Vec::new();
    for fold in &folds {
        let (train, test) = fold.split(&ds);
        let model = Svm::fit(&train, &SvmParams::default()).unwrap();
        let preds = model.predict_batch(test.features());
        cv_accs.push(ht_ml::metrics::accuracy(test.labels(), &preds));
    }
    let cv = ht_dsp::stats::mean(&cv_accs);
    // Independent holdout.
    let holdout = benchmark(100, 11, 1.0);
    let model = Svm::fit(&ds, &SvmParams::default()).unwrap();
    let ho = ht_ml::metrics::accuracy(holdout.labels(), &model.predict_batch(holdout.features()));
    assert!((cv - ho).abs() < 0.1, "cv {cv} vs holdout {ho}");
}

#[test]
fn confusion_and_f1_agree_across_models() {
    let train = benchmark(50, 12, 1.5);
    let test = benchmark(50, 13, 1.5);
    for (name, model) in all_models(&train, 14) {
        let preds = model.predict_batch(test.features());
        let c = Confusion::from_predictions(test.labels(), &preds);
        // F1 and accuracy can differ, but on balanced data they should be
        // within a few points of each other.
        assert!(
            (c.f1() - c.accuracy()).abs() < 0.1,
            "{name}: f1 {} vs acc {}",
            c.f1(),
            c.accuracy()
        );
    }
}
