//! Proof that steady-state int8 inference makes zero heap allocations: a
//! counting global allocator wraps `System`, and after one warm-up call
//! (which grows the flat scratch to its high-water size) repeated
//! `forward_with` / `decision_score_with` calls must not allocate at all.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use ht_ml::dataset::Dataset;
use ht_ml::nn::{ConvSpec, NeuralNet, NeuralNetConfig};
use ht_ml::quant::{QuantScratch, QuantizedNet, QuantizedSvm};
use ht_ml::svm::{Svm, SvmParams};

struct CountingAlloc;

thread_local! {
    // Const-initialized `Cell<u64>`: no lazy-init allocation and no
    // destructor, so the counter itself never perturbs the count.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocations made by `f` on this thread.
fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(|c| c.get());
    f();
    ALLOCS.with(|c| c.get()) - before
}

fn capture_dataset(input_dim: usize) -> Dataset {
    let mut ds = Dataset::new(input_dim);
    for i in 0..40 {
        let label = i % 2;
        let amp = if label == 1 { 1.0 } else { 0.3 };
        let phase = i as f64 * 0.37;
        let row: Vec<f64> = (0..input_dim)
            .map(|t| amp * (0.07 * t as f64 + phase).sin())
            .collect();
        ds.push(row, label).unwrap();
    }
    ds
}

#[test]
fn quantized_net_forward_is_allocation_free_after_warmup() {
    let ds = capture_dataset(256);
    let config = NeuralNetConfig {
        conv: vec![
            ConvSpec {
                out_channels: 4,
                kernel: 16,
                stride: 8,
            },
            ConvSpec {
                out_channels: 8,
                kernel: 8,
                stride: 4,
            },
        ],
        hidden: vec![8],
        epochs: 4,
        ..NeuralNetConfig::wav2vec2_mini()
    };
    let net = NeuralNet::fit(&ds, &config).unwrap();
    let calib: Vec<&[f64]> = (0..10).map(|i| ds.sample(i).0).collect();
    let qnet = QuantizedNet::from_net(&net, &calib).unwrap();

    let mut scratch = QuantScratch::new();
    let warm = qnet.forward_with(ds.sample(0).0, &mut scratch);

    let mut acc = 0.0;
    let n = allocs_during(|| {
        for i in 0..64 {
            acc += qnet.forward_with(ds.sample(i % ds.len()).0, &mut scratch);
        }
    });
    assert!(acc.is_finite() && warm.is_finite());
    assert_eq!(n, 0, "steady-state int8 forward allocated {n} times");
}

#[test]
fn quantized_svm_score_is_allocation_free_after_warmup() {
    let mut ds = Dataset::new(4);
    for i in 0..40 {
        let label = i % 2;
        let c = if label == 1 { 1.5 } else { -1.5 };
        let row: Vec<f64> = (0..4).map(|k| c + 0.1 * ((i + k) as f64).sin()).collect();
        ds.push(row, label).unwrap();
    }
    let svm = Svm::fit(&ds, &SvmParams::default()).unwrap();
    let calib: Vec<&[f64]> = (0..10).map(|i| ds.sample(i).0).collect();
    let qsvm = QuantizedSvm::from_svm(&svm, &calib).unwrap();

    let mut scratch = Vec::new();
    let warm = qsvm.decision_score_with(ds.sample(0).0, &mut scratch);

    let mut acc = 0.0;
    let n = allocs_during(|| {
        for i in 0..64 {
            acc += qsvm.decision_score_with(ds.sample(i % ds.len()).0, &mut scratch);
        }
    });
    assert!(acc.is_finite() && warm.is_finite());
    assert_eq!(n, 0, "steady-state int8 SVM scoring allocated {n} times");
}
